//! The online confidence pipeline: fetch-time path confidence as a
//! deterministic, timing-free service semantics.
//!
//! The cycle-level [`Machine`](crate::Machine) interleaves estimator
//! events with out-of-order timing, wrong-path excursions and squashes —
//! its confidence stream is a function of the whole microarchitecture.
//! A *streaming service* needs the opposite: a semantics defined purely
//! by the branch-event stream, so that any two executions of the same
//! stream — in-process, across a socket, before or after a
//! snapshot/restore — produce **byte-identical** predictions.
//!
//! [`OnlinePipeline`] is that semantics. It owns the same hardware the
//! simulator front end uses per thread — tournament predictor, JRS MDC
//! table, global history, and any [`EstimatorKind`] — and processes
//! resolved branch events in order. Each event is predicted and fetched
//! immediately; its *resolution* (estimator training, MDC update,
//! predictor update) is deferred by [`OnlineConfig::resolve_lag`] events,
//! modeling the paper's window of unresolved in-flight branches: the
//! confidence score at any point sums the contributions of the last
//! `resolve_lag` branches, exactly like the hardware register sums the
//! in-flight window.
//!
//! `paco-served` runs one pipeline per session; the parity tests replay
//! the same trace through a pipeline offline and require equality to the
//! last bit.

use std::collections::VecDeque;

use paco::{BranchFetchInfo, BranchToken, PathConfidenceEstimator};
use paco_branch::DirectionPredictor;
use paco_branch::{ConfidenceConfig, MdcTable, TournamentConfig, TournamentPredictor};
use paco_types::canon::Canon;
use paco_types::wire::{read_uvarint, write_uvarint};
use paco_types::{ControlKind, DynInstr, GlobalHistory, InstrClass, Pc};

use crate::EstimatorKind;

/// Configuration of an [`OnlinePipeline`] — the unit of client/server
/// config negotiation in `paco-serve` (compared by canonical hash).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Direction predictor configuration.
    pub tournament: TournamentConfig,
    /// JRS confidence table configuration.
    pub confidence: ConfidenceConfig,
    /// The path confidence estimator every event feeds.
    pub estimator: EstimatorKind,
    /// How many subsequent events a branch stays "in flight" before its
    /// resolution trains the tables. 0 resolves immediately (each score
    /// covers only the current branch); the paper-like default keeps a
    /// ROB's worth of branches unresolved.
    pub resolve_lag: usize,
    /// Estimator cycles ticked per event (drives PaCo's periodic MRT
    /// refresh; an event stands in for a fixed slice of simulated time).
    pub ticks_per_event: u64,
}

impl OnlineConfig {
    /// Upper bound accepted for any table size (guards servers against
    /// resource-exhaustion configs). Sized so that a full pipeline
    /// snapshot — every table at the cap, a full in-flight window —
    /// stays well under the serve protocol's 4 MiB frame cap, keeping
    /// snapshot/restore transportable for *every* config `validate`
    /// accepts (2^18 is still 2x the paper's largest table).
    pub const MAX_TABLE_ENTRIES: usize = 1 << 18;

    /// Upper bound accepted for [`resolve_lag`](Self::resolve_lag)
    /// (bounds the in-flight window a snapshot must carry).
    pub const MAX_RESOLVE_LAG: usize = 1 << 12;

    /// The paper-shaped configuration: full-size tables, a 32-branch
    /// in-flight window, one cycle per event.
    pub fn paper(estimator: EstimatorKind) -> Self {
        OnlineConfig {
            tournament: TournamentConfig::paper(),
            confidence: ConfidenceConfig::paper(),
            estimator,
            resolve_lag: 32,
            ticks_per_event: 1,
        }
    }

    /// A small configuration for fast tests.
    pub fn tiny(estimator: EstimatorKind) -> Self {
        OnlineConfig {
            tournament: TournamentConfig::tiny(),
            confidence: ConfidenceConfig::tiny(),
            estimator,
            resolve_lag: 8,
            ticks_per_event: 1,
        }
    }

    /// Checks every invariant the component constructors would otherwise
    /// panic on, plus service-level resource bounds — so a server can
    /// reject a hostile or corrupt config instead of crashing.
    pub fn validate(&self) -> Result<(), String> {
        let table = |name: &str, entries: usize| {
            if !entries.is_power_of_two() {
                Err(format!("{name} entries {entries} not a power of two"))
            } else if entries > Self::MAX_TABLE_ENTRIES {
                Err(format!("{name} entries {entries} exceed the service cap"))
            } else {
                Ok(())
            }
        };
        table("gshare", self.tournament.gshare_entries)?;
        table("bimodal", self.tournament.bimodal_entries)?;
        table("selector", self.tournament.selector_entries)?;
        table("confidence", self.confidence.entries)?;
        if self.tournament.history_bits > 64 {
            return Err("tournament history bits exceed 64".into());
        }
        if self.confidence.history_bits > 64 {
            return Err("confidence history bits exceed 64".into());
        }
        if !(1..=8).contains(&self.confidence.counter_bits) {
            return Err("confidence counter bits outside 1..=8".into());
        }
        if let EstimatorKind::PerBranchMrt(cfg) = self.estimator {
            table("per-branch MRT", cfg.entries)?;
        }
        if self.resolve_lag > Self::MAX_RESOLVE_LAG {
            return Err("resolve lag exceeds the service cap".into());
        }
        if self.ticks_per_event > 1 << 20 {
            return Err("ticks per event exceed the service cap".into());
        }
        Ok(())
    }
}

impl Canon for OnlineConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x24); // type tag (sim-crate 0x2x block; 0x30 is BenchmarkId)
        self.tournament.canon(out);
        self.confidence.canon(out);
        self.estimator.canon(out);
        self.resolve_lag.canon(out);
        self.ticks_per_event.canon(out);
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig::paper(EstimatorKind::Paco(paco::PacoConfig::paper()))
    }
}

/// The pipeline's answer for one branch event: the fetch-time confidence
/// estimate *with this branch in flight*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineOutcome {
    /// Confidence score after fetching this branch (lower = more
    /// confident); comparable across a session.
    pub score: u64,
    /// IEEE-754 bits of the estimated goodpath probability, for
    /// estimators that produce one. Bits, not a float, because this field
    /// is part of the byte-exact parity surface.
    pub prob_bits: Option<u64>,
    /// The direction the pipeline's predictor chose.
    pub predicted_taken: bool,
    /// Whether that prediction missed the architectural outcome.
    pub mispredicted: bool,
}

impl OnlineOutcome {
    /// The estimated goodpath probability as a float, if present.
    pub fn probability(&self) -> Option<f64> {
        self.prob_bits.map(f64::from_bits)
    }
}

/// A fetched-but-unresolved branch in the pipeline's in-flight window.
#[derive(Debug, Clone, Copy)]
struct PendingBranch {
    token: BranchToken,
    pc: u64,
    hist_before: u64,
    taken: bool,
    predicted: bool,
    conditional: bool,
}

const STATE_VERSION: u8 = 1;

/// The streaming confidence pipeline (see module docs).
///
/// # Examples
///
/// ```
/// use paco_sim::{OnlineConfig, OnlinePipeline, EstimatorKind};
/// use paco::PacoConfig;
/// use paco_types::{DynInstr, Pc};
///
/// let config = OnlineConfig::tiny(EstimatorKind::Paco(PacoConfig::paper()));
/// let mut pipe = OnlinePipeline::new(&config);
/// let outcome = pipe
///     .on_instr(&DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000)))
///     .expect("control instructions produce outcomes");
/// assert!(outcome.prob_bits.is_some()); // PaCo estimates a probability
/// ```
pub struct OnlinePipeline {
    config_hash: u64,
    resolve_lag: usize,
    ticks_per_event: u64,
    tournament: TournamentPredictor,
    mdc: MdcTable,
    hist: GlobalHistory,
    estimator: Box<dyn PathConfidenceEstimator>,
    pending: VecDeque<PendingBranch>,
    events: u64,
}

impl std::fmt::Debug for OnlinePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlinePipeline")
            .field("estimator", &self.estimator.name())
            .field("events", &self.events)
            .field("in_flight", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl OnlinePipeline {
    /// Builds a pipeline for a (valid) configuration.
    ///
    /// # Panics
    ///
    /// Panics on configurations [`OnlineConfig::validate`] rejects.
    pub fn new(config: &OnlineConfig) -> Self {
        OnlinePipeline {
            config_hash: config.canon_hash(),
            resolve_lag: config.resolve_lag,
            ticks_per_event: config.ticks_per_event,
            tournament: TournamentPredictor::new(config.tournament),
            mdc: MdcTable::new(config.confidence),
            hist: GlobalHistory::new(config.tournament.history_bits.max(8)),
            estimator: config.estimator.build(),
            pending: VecDeque::new(),
            events: 0,
        }
    }

    /// Canonical hash of the configuration this pipeline was built from;
    /// snapshots are only restorable across equal hashes.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Branch events processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Branches currently in the unresolved window.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The estimator's display name.
    pub fn estimator_name(&self) -> String {
        self.estimator.name()
    }

    /// Processes one instruction. Control instructions produce an
    /// [`OnlineOutcome`]; anything else is ignored (`None`) — the service
    /// event stream carries only branches.
    pub fn on_instr(&mut self, instr: &DynInstr) -> Option<OnlineOutcome> {
        let InstrClass::Control(kind) = instr.class else {
            return None;
        };
        let pc = instr.pc;
        let hist_before = self.hist.bits();

        let (info, predicted, mispredicted, conditional) = match kind {
            ControlKind::Conditional => {
                let predicted = self.tournament.predict(pc, hist_before);
                let mdc = self.mdc.read(self.mdc.index(pc, hist_before, predicted));
                let info = BranchFetchInfo::conditional_keyed(mdc, pc.table_hash() ^ hist_before);
                (info, predicted, predicted != instr.taken, true)
            }
            // The online pipeline has no BTB/RAS/indirect model: service
            // clients stream *resolved* events, and non-conditional
            // control contributes no confidence state under JRS coverage
            // (the paper's perlbmk blind spot, faithfully). Report them
            // as predicted-taken hits.
            _ => (BranchFetchInfo::non_conditional(), true, false, false),
        };

        if conditional {
            // The architectural outcome is known at event time, so the
            // history register tracks truth — the same state the machine
            // reaches after resolving (and, on a miss, repairing) the
            // branch.
            self.hist.push(instr.taken);
        }

        let token = self.estimator.on_fetch(info);
        let outcome = OnlineOutcome {
            score: self.estimator.score().0,
            prob_bits: self
                .estimator
                .goodpath_probability()
                .map(|p| p.value().to_bits()),
            predicted_taken: predicted,
            mispredicted,
        };

        self.pending.push_back(PendingBranch {
            token,
            pc: pc.addr(),
            hist_before,
            taken: instr.taken,
            predicted,
            conditional,
        });
        while self.pending.len() > self.resolve_lag {
            self.resolve_oldest();
        }
        self.estimator.tick(self.ticks_per_event);
        self.events += 1;
        Some(outcome)
    }

    /// Resolves the oldest in-flight branch: estimator training, MDC
    /// update, predictor update — the deferred back half of the event.
    fn resolve_oldest(&mut self) {
        let Some(b) = self.pending.pop_front() else {
            return;
        };
        if b.conditional {
            let pc = Pc::new(b.pc);
            let mispredicted = b.predicted != b.taken;
            self.estimator.on_resolve(b.token, mispredicted);
            let idx = self.mdc.index(pc, b.hist_before, b.predicted);
            self.mdc.update(idx, !mispredicted);
            self.tournament
                .update(pc, b.hist_before, b.taken, b.predicted);
        } else {
            self.estimator.on_resolve(b.token, false);
        }
    }

    /// Serializes the pipeline's complete state — tables, history,
    /// estimator, in-flight window — prefixed with a version byte and the
    /// configuration hash, so a blob can only restore into an identically
    /// configured pipeline.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        out.push(STATE_VERSION);
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        write_uvarint(out, self.events);
        write_uvarint(out, self.hist.bits());
        self.tournament.save_state(out);
        self.mdc.save_state(out);
        self.estimator.save_state(out);
        write_uvarint(out, self.pending.len() as u64);
        for b in &self.pending {
            b.token.save_state(out);
            write_uvarint(out, b.pc);
            write_uvarint(out, b.hist_before);
            out.push(b.taken as u8 | (b.predicted as u8) << 1 | (b.conditional as u8) << 2);
        }
    }

    /// Restores state saved by [`save_state`](Self::save_state),
    /// advancing `input` past the blob. `false` on version/config
    /// mismatch, truncation, or malformed fields; the pipeline must then
    /// be discarded (it may be partially restored).
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        let Some((&version, rest)) = input.split_first() else {
            return false;
        };
        if version != STATE_VERSION || rest.len() < 8 {
            return false;
        }
        let (hash_bytes, rest) = rest.split_at(8);
        if u64::from_le_bytes(hash_bytes.try_into().unwrap()) != self.config_hash {
            return false;
        }
        *input = rest;
        let Some(events) = read_uvarint(input) else {
            return false;
        };
        let Some(hist_bits) = read_uvarint(input) else {
            return false;
        };
        if !self.tournament.load_state(input)
            || !self.mdc.load_state(input)
            || !self.estimator.load_state(input)
        {
            return false;
        }
        let Some(pending_len) = read_uvarint(input) else {
            return false;
        };
        if pending_len > self.resolve_lag as u64 + 1 {
            return false;
        }
        let mut pending = VecDeque::with_capacity(pending_len as usize);
        for _ in 0..pending_len {
            let Some(token) = BranchToken::load_state(input) else {
                return false;
            };
            let Some(pc) = read_uvarint(input) else {
                return false;
            };
            let Some(hist_before) = read_uvarint(input) else {
                return false;
            };
            let Some((&flags, rest)) = input.split_first() else {
                return false;
            };
            if flags > 0b111 {
                return false;
            }
            *input = rest;
            pending.push_back(PendingBranch {
                token,
                pc,
                hist_before,
                taken: flags & 1 != 0,
                predicted: flags & 2 != 0,
                conditional: flags & 4 != 0,
            });
        }
        self.events = events;
        self.hist.restore(hist_bits);
        self.pending = pending;
        true
    }
}

// Sessions move across server worker threads; the pipeline must stay
// `Send` like everything else the engine fans out.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<OnlinePipeline>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use paco::{PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
    use paco_workloads::{BenchmarkId, Workload};

    fn paco_tiny() -> OnlineConfig {
        // A short refresh period so tests cross MRT refresh boundaries.
        OnlineConfig::tiny(EstimatorKind::Paco(
            PacoConfig::paper().with_refresh_period(500),
        ))
    }

    fn stream(n: usize, seed: u64) -> Vec<DynInstr> {
        let mut w = BenchmarkId::Gzip.build(seed);
        (0..n).map(|_| w.next_instr()).collect()
    }

    fn outcomes(config: &OnlineConfig, instrs: &[DynInstr]) -> Vec<OnlineOutcome> {
        let mut pipe = OnlinePipeline::new(config);
        instrs.iter().filter_map(|i| pipe.on_instr(i)).collect()
    }

    #[test]
    fn deterministic_across_runs() {
        let instrs = stream(20_000, 3);
        assert_eq!(
            outcomes(&paco_tiny(), &instrs),
            outcomes(&paco_tiny(), &instrs)
        );
    }

    #[test]
    fn non_control_instructions_are_ignored() {
        let mut pipe = OnlinePipeline::new(&paco_tiny());
        assert!(pipe.on_instr(&DynInstr::alu(Pc::new(0x100))).is_none());
        assert_eq!(pipe.events(), 0);
    }

    #[test]
    fn every_estimator_kind_serves() {
        let kinds = [
            EstimatorKind::None,
            EstimatorKind::Paco(PacoConfig::paper()),
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            EstimatorKind::StaticMrt,
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        ];
        let instrs = stream(5_000, 9);
        for kind in kinds {
            let config = OnlineConfig::tiny(kind);
            let out = outcomes(&config, &instrs);
            assert!(!out.is_empty());
            assert_eq!(out, outcomes(&config, &instrs));
        }
    }

    #[test]
    fn window_holds_resolve_lag_branches() {
        let config = paco_tiny();
        let mut pipe = OnlinePipeline::new(&config);
        let out: Vec<_> = stream(20_000, 5)
            .iter()
            .filter_map(|i| pipe.on_instr(i))
            .collect();
        assert_eq!(pipe.in_flight(), config.resolve_lag);
        // Scores reflect a whole window, not a single branch: with PaCo
        // warmed past an MRT refresh, unresolved branches carry measured
        // encodings and the register rises above zero regularly. Windowed
        // sums can also exceed any single branch's 4096 saturation.
        let nonzero = out.iter().filter(|o| o.score > 0).count();
        assert!(
            nonzero * 10 > out.len(),
            "windowed scores should often be nonzero: {nonzero}/{}",
            out.len()
        );
    }

    #[test]
    fn predictions_beat_coin_flips() {
        let instrs = stream(50_000, 7);
        let out = outcomes(&paco_tiny(), &instrs);
        let cond: Vec<_> = instrs
            .iter()
            .filter(|i| i.class.is_conditional_branch())
            .collect();
        let miss = out.iter().filter(|o| o.mispredicted).count();
        assert!(!cond.is_empty());
        assert!(
            miss * 4 < cond.len(),
            "online mispredict rate implausibly high: {miss}/{}",
            cond.len()
        );
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let config = paco_tiny();
        let instrs = stream(30_000, 11);
        let full = outcomes(&config, &instrs);

        // Run half, snapshot, restore into a fresh pipeline, run the rest.
        let mut first = OnlinePipeline::new(&config);
        let mut produced = Vec::new();
        let split = instrs.len() / 2;
        for i in &instrs[..split] {
            if let Some(o) = first.on_instr(i) {
                produced.push(o);
            }
        }
        let mut blob = Vec::new();
        first.save_state(&mut blob);
        drop(first);

        let mut resumed = OnlinePipeline::new(&config);
        let mut input = blob.as_slice();
        assert!(resumed.load_state(&mut input));
        assert!(input.is_empty(), "restore must consume the whole blob");
        for i in &instrs[split..] {
            if let Some(o) = resumed.on_instr(i) {
                produced.push(o);
            }
        }
        assert_eq!(produced, full);
    }

    #[test]
    fn snapshot_rejects_foreign_config_and_corruption() {
        let mut pipe = OnlinePipeline::new(&paco_tiny());
        for i in &stream(2_000, 2) {
            pipe.on_instr(i);
        }
        let mut blob = Vec::new();
        pipe.save_state(&mut blob);

        // A differently configured pipeline must refuse the blob.
        let other = OnlineConfig::tiny(EstimatorKind::ThresholdCount(
            ThresholdCountConfig::paper_default(),
        ));
        assert!(!OnlinePipeline::new(&other).load_state(&mut blob.as_slice()));

        // Truncations at every boundary fail cleanly.
        for cut in [0, 1, 8, blob.len() / 2, blob.len() - 1] {
            assert!(
                !OnlinePipeline::new(&paco_tiny()).load_state(&mut &blob[..cut]),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn validate_rejects_hostile_configs() {
        let mut c = OnlineConfig::tiny(EstimatorKind::None);
        c.tournament.gshare_entries = 3;
        assert!(c.validate().is_err());

        let mut c = OnlineConfig::tiny(EstimatorKind::None);
        c.confidence.entries = OnlineConfig::MAX_TABLE_ENTRIES * 2;
        assert!(c.validate().is_err());

        let mut c = OnlineConfig::tiny(EstimatorKind::None);
        c.resolve_lag = usize::MAX;
        assert!(c.validate().is_err());

        assert!(OnlineConfig::paper(EstimatorKind::None).validate().is_ok());
        assert!(paco_tiny().validate().is_ok());
    }

    #[test]
    fn config_hash_distinguishes_configurations() {
        let a = paco_tiny().canon_hash();
        let b = OnlineConfig::paper(EstimatorKind::Paco(PacoConfig::paper())).canon_hash();
        let c = OnlineConfig::tiny(EstimatorKind::None).canon_hash();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, paco_tiny().canon_hash());
    }
}
