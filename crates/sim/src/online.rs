//! The online confidence pipeline: fetch-time path confidence as a
//! deterministic, timing-free service semantics.
//!
//! The cycle-level [`Machine`](crate::Machine) interleaves estimator
//! events with out-of-order timing, wrong-path excursions and squashes —
//! its confidence stream is a function of the whole microarchitecture.
//! A *streaming service* needs the opposite: a semantics defined purely
//! by the branch-event stream, so that any two executions of the same
//! stream — in-process, across a socket, before or after a
//! snapshot/restore — produce **byte-identical** predictions.
//!
//! [`OnlinePipeline`] is that semantics. It owns the same hardware the
//! simulator front end uses per thread — tournament predictor, JRS MDC
//! table, global history, and any [`EstimatorKind`] — and processes
//! resolved branch events in order. Each event is predicted and fetched
//! immediately; its *resolution* (estimator training, MDC update,
//! predictor update) is deferred by [`OnlineConfig::resolve_lag`] events,
//! modeling the paper's window of unresolved in-flight branches: the
//! confidence score at any point sums the contributions of the last
//! `resolve_lag` branches, exactly like the hardware register sums the
//! in-flight window.
//!
//! # The two lanes
//!
//! Events enter the pipeline through one of two lanes — two
//! implementations of one semantics, in the classic
//! reference/fast-path pattern:
//!
//! * the **per-event lane**, [`on_instr`](OnlinePipeline::on_instr) —
//!   one [`DynInstr`] in, one [`OnlineOutcome`] out, with the estimator
//!   behind a `dyn` vtable and every table keyed the obvious way by
//!   `Pc`. Deliberately simple: this is the *reference semantics*.
//! * the **batched lane**, [`run_batch`](OnlinePipeline::run_batch) —
//!   a struct-of-arrays [`EventBatch`] in, an
//!   [`OutcomeBatch`](crate::OutcomeBatch) appended to. The estimator
//!   is matched out of its [`EstimatorKind`] **once per batch**, the
//!   inner loop is monomorphized over the concrete estimator type
//!   (no enum or vtable dispatch, no allocation), each event's PC is
//!   hashed once and carried through the in-flight window, and
//!   resolve-time component entries are touched once via fused train
//!   ops. `paco-served` decodes EVENTS frames straight into this lane.
//!
//! Two byte-identical kernels back the batched lane: the fused register
//! loop `run_batch` executes, and the chunked data-parallel kernel
//! behind [`run_batch_probed`](OnlinePipeline::run_batch_probed) —
//! staged `LANE`-event chunks, an order-exact table pass, a
//! chunk-at-a-time estimator pass, optional one-chunk-ahead software
//! prefetch, and the per-pass timing probe the `hotpath` bench reports.
//! The fused loop is the default because it measures faster on every
//! cache-resident (i.e. every validated) table configuration; see
//! `docs/ARCHITECTURE.md` for the anatomy and the measurement.
//!
//! Lane equality — per outcome and per wire byte — is enforced, not
//! assumed: the unit suite replays long streams through both kernels at
//! several batch sizes for every estimator kind, the serve integration
//! suite compares server bytes (batched) against offline replay
//! (per-event), and every `paco-load` or `hotpath` run digest-compares
//! the lanes before reporting a number.
//!
//! `paco-served` runs one pipeline per session; the parity tests replay
//! the same trace through a pipeline offline and require equality to the
//! last bit.

use paco::{
    AdaptiveMrtPredictor, BranchFetchInfo, BranchToken, ChunkOut, EstimatorChunk, PacoPredictor,
    PathConfidenceEstimator, PerBranchMrtPredictor, StaticMrtPredictor, ThresholdCountPredictor,
};
use paco_branch::DirectionPredictor;
use paco_branch::{ConfidenceConfig, MdcIndex, MdcTable, TournamentConfig, TournamentPredictor};
use paco_types::canon::Canon;
use paco_types::wire::{read_uvarint, write_uvarint};
use paco_types::{ControlKind, DynInstr, EventBatch, GlobalHistory, InstrClass, Pc};

use crate::batch::OutcomeBatch;
use crate::estimator_kind::NullEstimator;
use crate::EstimatorKind;

/// Configuration of an [`OnlinePipeline`] — the unit of client/server
/// config negotiation in `paco-serve` (compared by canonical hash).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Direction predictor configuration.
    pub tournament: TournamentConfig,
    /// JRS confidence table configuration.
    pub confidence: ConfidenceConfig,
    /// The path confidence estimator every event feeds.
    pub estimator: EstimatorKind,
    /// How many subsequent events a branch stays "in flight" before its
    /// resolution trains the tables. 0 resolves immediately (each score
    /// covers only the current branch); the paper-like default keeps a
    /// ROB's worth of branches unresolved.
    pub resolve_lag: usize,
    /// Estimator cycles ticked per event (drives PaCo's periodic MRT
    /// refresh; an event stands in for a fixed slice of simulated time).
    pub ticks_per_event: u64,
}

impl OnlineConfig {
    /// Upper bound accepted for any table size (guards servers against
    /// resource-exhaustion configs). Sized so that a full pipeline
    /// snapshot — every table at the cap, a full in-flight window —
    /// stays well under the serve protocol's 4 MiB frame cap, keeping
    /// snapshot/restore transportable for *every* config `validate`
    /// accepts (2^18 is still 2x the paper's largest table).
    pub const MAX_TABLE_ENTRIES: usize = 1 << 18;

    /// Upper bound accepted for [`resolve_lag`](Self::resolve_lag)
    /// (bounds the in-flight window a snapshot must carry).
    pub const MAX_RESOLVE_LAG: usize = 1 << 12;

    /// The paper-shaped configuration: full-size tables, a 32-branch
    /// in-flight window, one cycle per event.
    pub fn paper(estimator: EstimatorKind) -> Self {
        OnlineConfig {
            tournament: TournamentConfig::paper(),
            confidence: ConfidenceConfig::paper(),
            estimator,
            resolve_lag: 32,
            ticks_per_event: 1,
        }
    }

    /// A small configuration for fast tests.
    pub fn tiny(estimator: EstimatorKind) -> Self {
        OnlineConfig {
            tournament: TournamentConfig::tiny(),
            confidence: ConfidenceConfig::tiny(),
            estimator,
            resolve_lag: 8,
            ticks_per_event: 1,
        }
    }

    /// Checks every invariant the component constructors would otherwise
    /// panic on, plus service-level resource bounds — so a server can
    /// reject a hostile or corrupt config instead of crashing.
    pub fn validate(&self) -> Result<(), String> {
        let table = |name: &str, entries: usize| {
            if !entries.is_power_of_two() {
                Err(format!("{name} entries {entries} not a power of two"))
            } else if entries > Self::MAX_TABLE_ENTRIES {
                Err(format!("{name} entries {entries} exceed the service cap"))
            } else {
                Ok(())
            }
        };
        table("gshare", self.tournament.gshare_entries)?;
        table("bimodal", self.tournament.bimodal_entries)?;
        table("selector", self.tournament.selector_entries)?;
        table("confidence", self.confidence.entries)?;
        if self.tournament.history_bits > 64 {
            return Err("tournament history bits exceed 64".into());
        }
        if self.confidence.history_bits > 64 {
            return Err("confidence history bits exceed 64".into());
        }
        if !(1..=8).contains(&self.confidence.counter_bits) {
            return Err("confidence counter bits outside 1..=8".into());
        }
        if let EstimatorKind::PerBranchMrt(cfg) = self.estimator {
            table("per-branch MRT", cfg.entries)?;
        }
        if let EstimatorKind::AdaptiveMrt(cfg) = self.estimator {
            if cfg.detect_window == 0 || cfg.detect_window > 1 << 20 {
                return Err("adaptive MRT detect window outside 1..=2^20".into());
            }
            if cfg.threshold_permille > 1000 {
                return Err("adaptive MRT threshold exceeds 1000 permille".into());
            }
            if cfg.limit_permille == 0 || cfg.limit_permille > 1_000_000 {
                return Err("adaptive MRT limit outside 1..=10^6 permille".into());
            }
            if cfg.warmup_windows > 1 << 12 {
                return Err("adaptive MRT warmup windows exceed the service cap".into());
            }
        }
        if self.resolve_lag > Self::MAX_RESOLVE_LAG {
            return Err("resolve lag exceeds the service cap".into());
        }
        if self.ticks_per_event > 1 << 20 {
            return Err("ticks per event exceed the service cap".into());
        }
        Ok(())
    }
}

impl Canon for OnlineConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x24); // type tag (sim-crate 0x2x block; 0x30 is BenchmarkId)
        self.tournament.canon(out);
        self.confidence.canon(out);
        self.estimator.canon(out);
        self.resolve_lag.canon(out);
        self.ticks_per_event.canon(out);
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig::paper(EstimatorKind::Paco(paco::PacoConfig::paper()))
    }
}

/// The pipeline's answer for one branch event: the fetch-time confidence
/// estimate *with this branch in flight*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineOutcome {
    /// Confidence score after fetching this branch (lower = more
    /// confident); comparable across a session.
    pub score: u64,
    /// IEEE-754 bits of the estimated goodpath probability, for
    /// estimators that produce one. Bits, not a float, because this field
    /// is part of the byte-exact parity surface.
    pub prob_bits: Option<u64>,
    /// The direction the pipeline's predictor chose.
    pub predicted_taken: bool,
    /// Whether that prediction missed the architectural outcome.
    pub mispredicted: bool,
}

impl OnlineOutcome {
    /// The estimated goodpath probability as a float, if present.
    pub fn probability(&self) -> Option<f64> {
        self.prob_bits.map(f64::from_bits)
    }
}

/// A fetched-but-unresolved branch in the pipeline's in-flight window.
#[derive(Debug, Clone, Copy)]
struct PendingBranch {
    token: BranchToken,
    pc: u64,
    /// `Pc::table_hash()` of `pc`, computed once at fetch and reused by
    /// every resolve-time table index (a pure function of `pc`, so
    /// caching it cannot change any outcome). Not serialized — restore
    /// recomputes it. Meaningful only for conditional branches (0
    /// otherwise; resolution never indexes tables for non-conditional
    /// control).
    pc_hash: u64,
    /// The MDC entry read at fetch, reused by the batched lane's
    /// resolve. A pure function of `(pc_hash, hist_before, predicted)`,
    /// so caching it cannot change any outcome; not serialized
    /// (restore recomputes it); placeholder for non-conditional
    /// control.
    mdc_idx: MdcIndex,
    hist_before: u64,
    taken: bool,
    predicted: bool,
    conditional: bool,
}

impl PendingBranch {
    /// An inert record, used to pre-fill window slots.
    fn empty() -> Self {
        PendingBranch {
            token: BranchToken::empty(),
            pc: 0,
            pc_hash: 0,
            mdc_idx: MdcIndex::default(),
            hist_before: 0,
            taken: false,
            predicted: false,
            conditional: false,
        }
    }
}

/// The in-flight window: a fixed-capacity ring of [`PendingBranch`]es.
///
/// Occupancy is bounded by construction — every push is followed by
/// draining down to `resolve_lag` — so the ring is allocated once and
/// never grows, and its push/pop are plain masked index arithmetic with
/// no capacity management on the hot path. Capacity is rounded to a
/// power of two for the mask, the same allocation policy `VecDeque`
/// applies internally.
struct Window {
    slots: Box<[PendingBranch]>,
    mask: usize,
    head: usize,
    len: usize,
}

impl Window {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        Window {
            slots: vec![PendingBranch::empty(); capacity].into_boxed_slice(),
            mask: capacity - 1,
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn push_back(&mut self, b: PendingBranch) {
        debug_assert!(self.len < self.slots.len(), "window overfilled");
        let idx = (self.head + self.len) & self.mask;
        self.slots[idx] = b;
        self.len += 1;
    }

    #[inline]
    fn pop_front(&mut self) -> Option<PendingBranch> {
        if self.len == 0 {
            return None;
        }
        let b = self.slots[self.head];
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(b)
    }

    /// Iterates oldest → youngest (snapshot order).
    fn iter(&self) -> impl Iterator<Item = &PendingBranch> + '_ {
        (0..self.len).map(move |i| &self.slots[(self.head + i) & self.mask])
    }
}

const STATE_VERSION: u8 = 1;

/// The estimator held as a concrete type — one variant per
/// [`EstimatorKind`] — so the batched lane can select it once per batch
/// and monomorphize the inner loop over it, while the per-event lane
/// still reaches it as `dyn PathConfidenceEstimator`.
pub(crate) enum EstimatorLane {
    None(NullEstimator),
    Paco(PacoPredictor),
    ThresholdCount(ThresholdCountPredictor),
    StaticMrt(StaticMrtPredictor),
    PerBranchMrt(PerBranchMrtPredictor),
    AdaptiveMrt(AdaptiveMrtPredictor),
}

impl EstimatorLane {
    /// Builds the concrete estimator for a kind. This is the **single**
    /// kind→constructor mapping in the crate: [`EstimatorKind::build`]
    /// boxes the same variants via [`into_boxed`](Self::into_boxed), so
    /// the pipeline and the cycle-level machine cannot instantiate
    /// different estimators for one kind.
    pub(crate) fn new(kind: &EstimatorKind) -> Self {
        match *kind {
            EstimatorKind::None => EstimatorLane::None(NullEstimator),
            EstimatorKind::Paco(cfg) => EstimatorLane::Paco(PacoPredictor::new(cfg)),
            EstimatorKind::ThresholdCount(cfg) => {
                EstimatorLane::ThresholdCount(ThresholdCountPredictor::new(cfg))
            }
            EstimatorKind::StaticMrt => {
                EstimatorLane::StaticMrt(StaticMrtPredictor::with_default_profile())
            }
            EstimatorKind::PerBranchMrt(cfg) => {
                EstimatorLane::PerBranchMrt(PerBranchMrtPredictor::new(cfg))
            }
            EstimatorKind::AdaptiveMrt(cfg) => {
                EstimatorLane::AdaptiveMrt(AdaptiveMrtPredictor::new(cfg))
            }
        }
    }

    /// Boxes the concrete estimator behind the trait object interface
    /// the cycle-level machine uses.
    pub(crate) fn into_boxed(self) -> Box<dyn PathConfidenceEstimator> {
        match self {
            EstimatorLane::None(e) => Box::new(e),
            EstimatorLane::Paco(e) => Box::new(e),
            EstimatorLane::ThresholdCount(e) => Box::new(e),
            EstimatorLane::StaticMrt(e) => Box::new(e),
            EstimatorLane::PerBranchMrt(e) => Box::new(e),
            EstimatorLane::AdaptiveMrt(e) => Box::new(e),
        }
    }

    fn as_dyn(&self) -> &dyn PathConfidenceEstimator {
        match self {
            EstimatorLane::None(e) => e,
            EstimatorLane::Paco(e) => e,
            EstimatorLane::ThresholdCount(e) => e,
            EstimatorLane::StaticMrt(e) => e,
            EstimatorLane::PerBranchMrt(e) => e,
            EstimatorLane::AdaptiveMrt(e) => e,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn PathConfidenceEstimator {
        match self {
            EstimatorLane::None(e) => e,
            EstimatorLane::Paco(e) => e,
            EstimatorLane::ThresholdCount(e) => e,
            EstimatorLane::StaticMrt(e) => e,
            EstimatorLane::PerBranchMrt(e) => e,
            EstimatorLane::AdaptiveMrt(e) => e,
        }
    }
}

/// Events per chunk of the batched kernel: a register-blocked lane
/// count small enough for every staging array to live on the stack and
/// for packed predictions to fit one `u64` mask, large enough to
/// amortize chunk bookkeeping and give prefetches a chunk of latency to
/// cover.
const LANE: usize = 16;

/// Stack-resident staging for one chunk of control events: the raw
/// compacted fields (`fill`) plus the per-lane PC hash and pre-event
/// history `setup_chunk` precomputes. Deliberately *thin* — table
/// indices are cheap ALU off `(pc_hash, hist_before)`, so the table
/// pass derives them in registers via the hashed APIs instead of
/// round-tripping five more staged arrays through L1 (measured as a
/// net loss on cache-resident tables).
struct ChunkBuf {
    len: usize,
    pc: [u64; LANE],
    conditional: [bool; LANE],
    taken: [bool; LANE],
    pc_hash: [u64; LANE],
    hist_before: [u64; LANE],
}

impl ChunkBuf {
    fn empty() -> Self {
        ChunkBuf {
            len: 0,
            pc: [0; LANE],
            conditional: [false; LANE],
            taken: [false; LANE],
            pc_hash: [0; LANE],
            hist_before: [0; LANE],
        }
    }

    /// Compacts the next up-to-`LANE` control events out of the event
    /// stream (non-control events are skipped, exactly like the scalar
    /// lane). Touches no pipeline state.
    fn fill(&mut self, lanes: &mut impl Iterator<Item = (Pc, Option<bool>, bool)>) {
        self.len = 0;
        while self.len < LANE {
            let Some((pc, control, taken)) = lanes.next() else {
                break;
            };
            let Some(conditional) = control else {
                continue;
            };
            self.pc[self.len] = pc.addr();
            self.conditional[self.len] = conditional;
            self.taken[self.len] = taken;
            self.len += 1;
        }
    }
}

/// Per-chunk staging the table pass writes and the estimator pass
/// reads, owned by the pipeline and reused across chunks **without
/// clearing**: every element a chunk consumes is written earlier in the
/// same chunk (the table pass covers all `LANE` lanes each run, the
/// estimator contract requires `on_chunk` to fill every output lane),
/// so stale values from the previous chunk are never observed and the
/// kernel never pays a per-chunk memset.
struct ChunkScratch {
    /// `(token, mispredicted)` for resolves that pop pre-chunk window
    /// entries, in pop order — filled at the exact per-event resolve
    /// points of the table pass, consumed by the estimator pass.
    window_resolves: [(BranchToken, bool); LANE],
    predicted: [bool; LANE],
    mispredicted: [bool; LANE],
    fetch: [BranchFetchInfo; LANE],
    mdc_idx: [MdcIndex; LANE],
    tokens: [BranchToken; LANE],
    scores: [u64; LANE],
    probs: [u64; LANE],
    has_prob: [bool; LANE],
    flags: [u8; LANE],
}

impl ChunkScratch {
    fn new() -> Box<Self> {
        Box::new(ChunkScratch {
            window_resolves: [(BranchToken::empty(), false); LANE],
            predicted: [false; LANE],
            mispredicted: [false; LANE],
            fetch: [BranchFetchInfo::non_conditional(); LANE],
            mdc_idx: [MdcIndex::default(); LANE],
            tokens: [BranchToken::empty(); LANE],
            scores: [0; LANE],
            probs: [0; LANE],
            has_prob: [false; LANE],
            flags: [0; LANE],
        })
    }
}

/// The three passes of the chunked batched kernel, as attributed by a
/// [`PassProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotPass {
    /// Pass 0, staging: event compaction, the history scan, hashed
    /// table-index precomputation and next-chunk software prefetch.
    Predict,
    /// Pass A, the order-exact table pass: counter reads, MDC fetches
    /// and due resolve-time table trains (reads and trains interleave
    /// per event *by design* — splitting them would reorder collisions —
    /// so they are inseparable within this pass).
    Train,
    /// Pass B, the estimator pass
    /// ([`PathConfidenceEstimator::on_chunk`]), plus chunk bookkeeping
    /// (window update, outcome append).
    Estimator,
}

/// Observer attributing the chunked kernel's wall time to its passes
/// (the `hotpath` bench's per-pass breakdown). The final partial chunk
/// runs the scalar step outside any span and is deliberately
/// unattributed.
pub trait PassProbe {
    /// Runs `f`, attributing its duration to `pass`.
    fn span<R>(&mut self, pass: HotPass, f: impl FnOnce() -> R) -> R;
}

/// The default probe: spans run unobserved and the probe monomorphizes
/// away — [`OnlinePipeline::run_batch`] pays nothing for the hook.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl PassProbe for NoProbe {
    #[inline(always)]
    fn span<R>(&mut self, _pass: HotPass, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Everything in the pipeline except the estimator: the front-end
/// hardware, the in-flight window and the event counters. Split out so
/// the batched lane can borrow the core mutably alongside the concrete
/// estimator it matched out of the [`EstimatorLane`].
struct PipelineCore {
    config_hash: u64,
    resolve_lag: usize,
    ticks_per_event: u64,
    tournament: TournamentPredictor,
    mdc: MdcTable,
    hist: GlobalHistory,
    pending: Window,
    events: u64,
    /// Whether the chunked kernel's `setup_chunk` issues software
    /// prefetches. Decided once at construction from the tables' host
    /// footprint ([`PREFETCH_FOOTPRINT_MIN`]): a cache-resident working
    /// set makes every prefetch a wasted issue slot (measured as a
    /// multi-percent tax on the paper configuration), while tables that
    /// outgrow the cache miss without them.
    prefetch: bool,
    /// Chunk staging reused across every chunk of every batch (see
    /// [`ChunkScratch`]); boxed so the pipeline stays cheaply movable.
    scratch: Box<ChunkScratch>,
}

/// Combined table footprint (host bytes) below which the chunked
/// kernel's software prefetches are disabled: a working set this size
/// sits in L1/L2 in steady state, so prefetch hints only burn decode
/// bandwidth. Half a typical per-core L2. Note the service caps table
/// sizes such that every *validated* configuration lands under ~1 MiB
/// of host footprint — on hardware with megabyte-class L2s the gate
/// rarely opens, which is part of why the fused lane stays the
/// `run_batch` default (`examples/kernel_ab.rs` measures this).
const PREFETCH_FOOTPRINT_MIN: usize = 512 * 1024;

impl PipelineCore {
    /// The **reference** per-event implementation: one control event
    /// end to end — predict, read the MDC, fetch into the estimator,
    /// window the branch, resolve whatever falls out of the window,
    /// tick — written the obvious way against the plain `Pc`-keyed
    /// table APIs and a `dyn` estimator, exactly as the service's
    /// per-event path has always worked.
    ///
    /// This body is deliberately *not* shared with the batched fast
    /// step below: its job is to state the event semantics legibly and
    /// serve as the baseline the batched lane is proven against
    /// (outcome-by-outcome and wire-byte equality in the sim/serve
    /// suites, plus a digest gate on every `hotpath`/`paco-load` run)
    /// and measured against (the `hotpath` experiment). Any change to
    /// the semantics must be made to both bodies; the parity tests
    /// fail loudly if only one moves.
    fn step_reference(
        &mut self,
        est: &mut dyn PathConfidenceEstimator,
        pc: Pc,
        conditional: bool,
        taken: bool,
    ) -> OnlineOutcome {
        let hist_before = self.hist.bits();

        let (info, idx, predicted, mispredicted) = if conditional {
            let predicted = self.tournament.predict(pc, hist_before);
            let (idx, mdc) = self.mdc.fetch(pc, hist_before, predicted);
            let info = BranchFetchInfo::conditional_keyed(mdc, pc.table_hash() ^ hist_before);
            // The architectural outcome is known at event time, so the
            // history register tracks truth — the same state the machine
            // reaches after resolving (and, on a miss, repairing) the
            // branch.
            self.hist.push(taken);
            (info, idx, predicted, predicted != taken)
        } else {
            (
                BranchFetchInfo::non_conditional(),
                MdcIndex::default(),
                true,
                false,
            )
        };

        let token = est.on_fetch(info);
        let outcome = OnlineOutcome {
            score: est.score().0,
            prob_bits: est.goodpath_probability().map(|p| p.value().to_bits()),
            predicted_taken: predicted,
            mispredicted,
        };

        self.pending.push_back(PendingBranch {
            token,
            pc: pc.addr(),
            // The window is shared with the batched lane, whose resolve
            // indexes off the cached hash/index; fill them here too so
            // the lanes can interleave freely on one pipeline.
            pc_hash: if conditional { pc.table_hash() } else { 0 },
            mdc_idx: idx,
            hist_before,
            taken,
            predicted,
            conditional,
        });
        while self.pending.len() > self.resolve_lag {
            self.resolve_oldest_reference(est);
        }
        est.tick(self.ticks_per_event);
        self.events += 1;
        outcome
    }

    /// The reference resolve: plain `Pc`-keyed table updates (see
    /// [`step_reference`](Self::step_reference)).
    fn resolve_oldest_reference(&mut self, est: &mut dyn PathConfidenceEstimator) {
        let Some(b) = self.pending.pop_front() else {
            return;
        };
        if b.conditional {
            let pc = Pc::new(b.pc);
            let mispredicted = b.predicted != b.taken;
            est.on_resolve(b.token, mispredicted);
            let idx = self.mdc.index(pc, b.hist_before, b.predicted);
            self.mdc.update(idx, !mispredicted);
            self.tournament
                .update(pc, b.hist_before, b.taken, b.predicted);
        } else {
            est.on_resolve(b.token, false);
        }
    }

    /// The **batched-lane** step: the same event semantics as
    /// [`step_reference`](Self::step_reference), engineered for the hot
    /// loop — the PC is hashed once and every table (gshare, bimodal,
    /// selector, MDC, the per-branch key, and the same tables again at
    /// resolve) indexes off it, resolve-time component entries are
    /// touched once via the fused train ops, and the estimator is a
    /// concrete type so every call inlines. Equality with the reference
    /// is asserted by the parity suites (the hashed/fused table APIs
    /// are themselves defined by delegation from the plain ones, so the
    /// indices and final table states cannot differ).
    #[inline(always)]
    fn step<E: PathConfidenceEstimator>(
        &mut self,
        est: &mut E,
        pc: Pc,
        conditional: bool,
        taken: bool,
    ) -> OnlineOutcome {
        let hist_before = self.hist.bits();

        let (info, pc_hash, idx, predicted, mispredicted) = if conditional {
            // Hash the PC once; every table the event touches — gshare,
            // bimodal, selector, MDC, the per-branch key, and the same
            // tables again at resolve — indexes off this value.
            let pc_hash = pc.table_hash();
            let predicted = self.tournament.predict_hashed(pc_hash, hist_before);
            let (idx, mdc) = self.mdc.fetch_hashed(pc_hash, hist_before, predicted);
            let info = BranchFetchInfo::conditional_keyed(mdc, pc_hash ^ hist_before);
            // The architectural outcome is known at event time, so the
            // history register tracks truth — the same state the machine
            // reaches after resolving (and, on a miss, repairing) the
            // branch.
            self.hist.push(taken);
            (info, pc_hash, idx, predicted, predicted != taken)
        } else {
            // The online pipeline has no BTB/RAS/indirect model: service
            // clients stream *resolved* events, and non-conditional
            // control contributes no confidence state under JRS coverage
            // (the paper's perlbmk blind spot, faithfully). Report them
            // as predicted-taken hits.
            (
                BranchFetchInfo::non_conditional(),
                0,
                MdcIndex::default(),
                true,
                false,
            )
        };

        let token = est.on_fetch(info);
        let outcome = OnlineOutcome {
            score: est.score().0,
            prob_bits: est.goodpath_probability().map(|p| p.value().to_bits()),
            predicted_taken: predicted,
            mispredicted,
        };

        self.pending.push_back(PendingBranch {
            token,
            pc: pc.addr(),
            pc_hash,
            mdc_idx: idx,
            hist_before,
            taken,
            predicted,
            conditional,
        });
        while self.pending.len() > self.resolve_lag {
            self.resolve_oldest(est);
        }
        est.tick(self.ticks_per_event);
        self.events += 1;
        outcome
    }

    /// The batched-lane resolve: estimator training, MDC update,
    /// predictor update — the deferred back half of the event, indexing
    /// every table off the hash cached at fetch.
    #[inline(always)]
    fn resolve_oldest<E: PathConfidenceEstimator>(&mut self, est: &mut E) {
        let Some(b) = self.pending.pop_front() else {
            return;
        };
        if b.conditional {
            let mispredicted = b.predicted != b.taken;
            est.on_resolve(b.token, mispredicted);
            self.mdc.update(b.mdc_idx, !mispredicted);
            self.tournament
                .update_hashed(b.pc_hash, b.hist_before, b.taken);
        } else {
            est.on_resolve(b.token, false);
        }
    }

    /// Stages one chunk: computes each lane's PC hash and pre-event
    /// history (advancing the history register exactly as the per-event
    /// order would), and — for table footprints past
    /// [`PREFETCH_FOOTPRINT_MIN`] only — derives every lane's table
    /// indices through the pure batched index APIs and issues software
    /// prefetches for the lines they name. Pure setup — no counter is
    /// read or written — so the kernel runs it a full chunk ahead of
    /// the chunk's table pass, putting the prefetch distance at one
    /// chunk (`LANE` events). The prefetch-path indices are computed
    /// into locals and dropped: recomputing them in the table pass is a
    /// couple of ALU ops, cheaper than staging them through memory.
    /// Staging only runs for **full** chunks (partial tails take the
    /// scalar step), so every loop here is a fixed `LANE` trip count —
    /// the optimizer drops all bounds checks and unrolls freely.
    fn setup_chunk(&mut self, buf: &mut ChunkBuf) {
        debug_assert_eq!(buf.len, LANE, "setup_chunk stages full chunks only");
        for j in 0..LANE {
            let conditional = buf.conditional[j];
            buf.pc_hash[j] = if conditional {
                Pc::new(buf.pc[j]).table_hash()
            } else {
                0
            };
            buf.hist_before[j] = self.hist.bits();
            if conditional {
                self.hist.push(buf.taken[j]);
            }
        }
        if self.prefetch {
            let mut gshare_idx = [0u32; LANE];
            let mut bimodal_idx = [0u32; LANE];
            let mut selector_idx = [0u32; LANE];
            let mut mdc_not_taken = [MdcIndex::default(); LANE];
            let mut mdc_taken = [MdcIndex::default(); LANE];
            self.tournament.cache_indices(
                &buf.pc_hash,
                &buf.hist_before,
                &mut gshare_idx,
                &mut bimodal_idx,
                &mut selector_idx,
            );
            self.mdc.index_pair_hashed_n(
                &buf.pc_hash,
                &buf.hist_before,
                &mut mdc_not_taken,
                &mut mdc_taken,
            );
            for j in 0..LANE {
                if buf.conditional[j] {
                    self.tournament
                        .prefetch_at(gshare_idx[j], bimodal_idx[j], selector_idx[j]);
                    self.mdc.prefetch_at(mdc_not_taken[j], mdc_taken[j]);
                }
            }
        }
    }

    /// Executes one staged full chunk: the order-exact table pass (pass
    /// A), the estimator pass (pass B, [`PathConfidenceEstimator::on_chunk`]),
    /// then window update and outcome append.
    ///
    /// The two passes may be separated because predictor-table state and
    /// estimator state are disjoint and data flows only one way between
    /// them (the MDC value read at fetch feeds the estimator; nothing
    /// flows back): running every table operation of the chunk first, in
    /// per-event order, then every estimator operation, in per-event
    /// order, gives each operation exactly the state it sees in the
    /// fused per-event order — byte-identical outcomes, enforced by the
    /// lane-parity suites and digest gates.
    fn execute_chunk<E: PathConfidenceEstimator, P: PassProbe>(
        &mut self,
        est: &mut E,
        buf: &ChunkBuf,
        out: &mut OutcomeBatch,
        probe: &mut P,
    ) {
        debug_assert_eq!(buf.len, LANE, "execute_chunk runs full chunks only");
        let w0 = self.pending.len();
        // The resolve schedule in closed form: the window drains to
        // `resolve_lag` after every push, so event `j` performs exactly
        // one resolve iff `j >= due_start`; resolve `r` pops the r-th
        // entry of [pre-chunk window ++ chunk events].
        let due_start = self.resolve_lag.saturating_sub(w0);
        let total_resolves = LANE.saturating_sub(due_start);
        let window_pops = total_resolves.min(w0);
        let in_chunk_pops = total_resolves - window_pops;

        let s = &mut *self.scratch;
        probe.span(HotPass::Train, || {
            // A train-free chunk (window still warming: no resolve due)
            // has no mid-chunk counter writes, so the packed SWAR gather
            // is order-exact and replaces 3·LANE scalar counter reads.
            // Its component indices live and die in registers here.
            let packed = if total_resolves == 0 {
                let mut gshare_idx = [0u32; LANE];
                let mut bimodal_idx = [0u32; LANE];
                let mut selector_idx = [0u32; LANE];
                self.tournament.cache_indices(
                    &buf.pc_hash,
                    &buf.hist_before,
                    &mut gshare_idx,
                    &mut bimodal_idx,
                    &mut selector_idx,
                );
                self.tournament
                    .predict_cached_n(&gshare_idx, &bimodal_idx, &selector_idx)
            } else {
                0
            };

            for j in 0..LANE {
                if buf.conditional[j] {
                    let p = if total_resolves == 0 {
                        packed >> j & 1 != 0
                    } else {
                        self.tournament
                            .predict_hashed(buf.pc_hash[j], buf.hist_before[j])
                    };
                    let (idx, mdc) = self.mdc.fetch_hashed(buf.pc_hash[j], buf.hist_before[j], p);
                    s.predicted[j] = p;
                    s.mispredicted[j] = p != buf.taken[j];
                    s.fetch[j] = BranchFetchInfo::conditional_keyed(
                        mdc,
                        buf.pc_hash[j] ^ buf.hist_before[j],
                    );
                    s.mdc_idx[j] = idx;
                } else {
                    s.predicted[j] = true;
                    s.mispredicted[j] = false;
                    s.fetch[j] = BranchFetchInfo::non_conditional();
                    s.mdc_idx[j] = MdcIndex::default();
                }
                if j >= due_start {
                    let r = j - due_start;
                    if r < window_pops {
                        // Pop the window entry at its exact per-event
                        // resolve point; its token goes to the estimator
                        // pass, its trains land here.
                        let b = self.pending.pop_front().expect("window holds the pops");
                        s.window_resolves[r] = (b.token, b.conditional && b.predicted != b.taken);
                        if b.conditional {
                            let mis = b.predicted != b.taken;
                            self.mdc.update(b.mdc_idx, !mis);
                            self.tournament
                                .update_hashed(b.pc_hash, b.hist_before, b.taken);
                        }
                    } else {
                        let i = r - window_pops;
                        if buf.conditional[i] {
                            self.mdc.update(s.mdc_idx[i], !s.mispredicted[i]);
                            self.tournament.update_hashed(
                                buf.pc_hash[i],
                                buf.hist_before[i],
                                buf.taken[i],
                            );
                        }
                    }
                }
            }
        });

        probe.span(HotPass::Estimator, || {
            est.on_chunk(
                &EstimatorChunk {
                    fetch: &s.fetch,
                    mispredicted: &s.mispredicted,
                    window_resolves: &s.window_resolves[..window_pops],
                    first_resolve_event: due_start,
                    ticks: self.ticks_per_event,
                },
                &mut ChunkOut {
                    tokens: &mut s.tokens,
                    scores: &mut s.scores,
                    probs: &mut s.probs,
                    has_prob: &mut s.has_prob,
                },
            );

            // Chunk events not consumed by an in-chunk resolve enter the
            // window with the tokens the estimator just produced.
            for i in in_chunk_pops..LANE {
                self.pending.push_back(PendingBranch {
                    token: s.tokens[i],
                    pc: buf.pc[i],
                    pc_hash: buf.pc_hash[i],
                    mdc_idx: s.mdc_idx[i],
                    hist_before: buf.hist_before[i],
                    taken: buf.taken[i],
                    predicted: s.predicted[i],
                    conditional: buf.conditional[i],
                });
            }
            self.events += LANE as u64;
            for j in 0..LANE {
                s.flags[j] = s.predicted[j] as u8
                    | (s.mispredicted[j] as u8) << 1
                    | (s.has_prob[j] as u8) << 2;
            }
            out.extend_packed(&s.flags, &s.scores, &s.probs);
        });
    }

    /// The batched lane's **fused** inner loop, monomorphized per
    /// concrete estimator: no enum or vtable dispatch per event, no
    /// allocation, and every per-event value lives and dies in
    /// registers. This is the `run_batch` body for cache-resident table
    /// configurations, where it is measurably faster than the chunked
    /// kernel — with no table misses to hide, chunk staging is pure L1
    /// store/reload tax (`examples/kernel_ab.rs` holds the numbers).
    fn process_batch_fused<E: PathConfidenceEstimator>(
        &mut self,
        est: &mut E,
        events: &EventBatch,
        out: &mut OutcomeBatch,
    ) {
        out.reserve(events.len());
        for (pc, control, taken) in events.lanes() {
            // Non-control events are ignored, exactly like `on_instr`.
            let Some(conditional) = control else {
                continue;
            };
            let outcome = self.step(est, pc, conditional, taken);
            out.push(&outcome);
        }
    }

    /// The batched lane's **chunked** inner loop, monomorphized per
    /// concrete estimator: no enum or vtable dispatch per event, no
    /// allocation (chunk staging lives on the stack, the caller's
    /// batches are reused across frames).
    ///
    /// Control events are compacted into `LANE`-event chunks and run
    /// through the three-pass kernel — stage (+ prefetch, one chunk
    /// ahead, double-buffered), table pass, estimator pass — with the
    /// final partial chunk falling back to the scalar
    /// [`step`](Self::step). Non-control events are ignored, exactly
    /// like `on_instr`. Reached through
    /// [`OnlinePipeline::run_batch_probed`]; its prefetch stage engages
    /// past [`PREFETCH_FOOTPRINT_MIN`], where the chunk of prefetch
    /// distance hides table misses a register loop would stall on.
    fn process_batch<E: PathConfidenceEstimator, P: PassProbe>(
        &mut self,
        est: &mut E,
        events: &EventBatch,
        out: &mut OutcomeBatch,
        probe: &mut P,
    ) {
        out.reserve(events.len());
        let mut lanes = events.lanes();
        // Double-buffered staging, flipped by index — the buffers never
        // move, so advancing a chunk costs one index flip, not a
        // buffer-sized copy.
        let mut bufs = [ChunkBuf::empty(), ChunkBuf::empty()];
        let mut cur = 0;
        probe.span(HotPass::Predict, || {
            bufs[cur].fill(&mut lanes);
            if bufs[cur].len == LANE {
                self.setup_chunk(&mut bufs[cur]);
            }
        });
        while bufs[cur].len == LANE {
            // Stage (and prefetch) chunk k+1 before touching chunk k's
            // counters: by the time the table pass needs a line, its
            // prefetch is a chunk old.
            let nxt = cur ^ 1;
            probe.span(HotPass::Predict, || {
                bufs[nxt].fill(&mut lanes);
                if bufs[nxt].len == LANE {
                    self.setup_chunk(&mut bufs[nxt]);
                }
            });
            self.execute_chunk(est, &bufs[cur], out, probe);
            cur = nxt;
        }
        // The tail (fewer than LANE staged events) runs the scalar step;
        // `fill` never touched shared state, so nothing replays.
        for j in 0..bufs[cur].len {
            let outcome = self.step(
                est,
                Pc::new(bufs[cur].pc[j]),
                bufs[cur].conditional[j],
                bufs[cur].taken[j],
            );
            out.push(&outcome);
        }
    }
}

/// The streaming confidence pipeline (see module docs).
///
/// # Examples
///
/// ```
/// use paco_sim::{OnlineConfig, OnlinePipeline, EstimatorKind};
/// use paco::PacoConfig;
/// use paco_types::{DynInstr, Pc};
///
/// let config = OnlineConfig::tiny(EstimatorKind::Paco(PacoConfig::paper()));
/// let mut pipe = OnlinePipeline::new(&config);
/// let outcome = pipe
///     .on_instr(&DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000)))
///     .expect("control instructions produce outcomes");
/// assert!(outcome.prob_bits.is_some()); // PaCo estimates a probability
/// ```
///
/// The batched lane produces the same outcomes from a
/// [`paco_types::EventBatch`]:
///
/// ```
/// use paco_sim::{OnlineConfig, OnlinePipeline, EstimatorKind, OutcomeBatch};
/// use paco_types::{DynInstr, EventBatch, Pc};
///
/// let config = OnlineConfig::tiny(EstimatorKind::None);
/// let mut pipe = OnlinePipeline::new(&config);
/// let mut batch = EventBatch::new();
/// batch.push(&DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000)));
/// let mut out = OutcomeBatch::new();
/// pipe.run_batch(&batch, &mut out);
/// assert_eq!(out.len(), 1);
/// ```
pub struct OnlinePipeline {
    core: PipelineCore,
    lane: EstimatorLane,
}

impl std::fmt::Debug for OnlinePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlinePipeline")
            .field("estimator", &self.estimator_name())
            .field("events", &self.core.events)
            .field("in_flight", &self.core.pending.len())
            .finish_non_exhaustive()
    }
}

impl OnlinePipeline {
    /// Builds a pipeline for a (valid) configuration.
    ///
    /// # Panics
    ///
    /// Panics on configurations [`OnlineConfig::validate`] rejects.
    pub fn new(config: &OnlineConfig) -> Self {
        let tournament = TournamentPredictor::new(config.tournament);
        let mdc = MdcTable::new(config.confidence);
        let prefetch = tournament.host_bytes() + mdc.entries() >= PREFETCH_FOOTPRINT_MIN;
        OnlinePipeline {
            core: PipelineCore {
                config_hash: config.canon_hash(),
                resolve_lag: config.resolve_lag,
                ticks_per_event: config.ticks_per_event,
                tournament,
                mdc,
                hist: GlobalHistory::new(config.tournament.history_bits.max(8)),
                pending: Window::new(config.resolve_lag + 1),
                events: 0,
                prefetch,
                scratch: ChunkScratch::new(),
            },
            lane: EstimatorLane::new(&config.estimator),
        }
    }

    /// Canonical hash of the configuration this pipeline was built from;
    /// snapshots are only restorable across equal hashes.
    pub fn config_hash(&self) -> u64 {
        self.core.config_hash
    }

    /// Branch events processed so far.
    pub fn events(&self) -> u64 {
        self.core.events
    }

    /// Branches currently in the unresolved window.
    pub fn in_flight(&self) -> usize {
        self.core.pending.len()
    }

    /// The estimator's display name.
    pub fn estimator_name(&self) -> String {
        self.lane.as_dyn().name()
    }

    /// Processes one instruction through the **per-event lane**. Control
    /// instructions produce an [`OnlineOutcome`]; anything else is
    /// ignored (`None`) — the service event stream carries only
    /// branches.
    pub fn on_instr(&mut self, instr: &DynInstr) -> Option<OnlineOutcome> {
        let InstrClass::Control(kind) = instr.class else {
            return None;
        };
        let conditional = matches!(kind, ControlKind::Conditional);
        Some(
            self.core
                .step_reference(self.lane.as_dyn_mut(), instr.pc, conditional, instr.taken),
        )
    }

    /// Processes a whole [`EventBatch`] through the **batched lane**,
    /// appending one outcome per control event to `out` (non-control
    /// events are ignored, exactly like [`on_instr`](Self::on_instr)).
    ///
    /// The estimator kind is matched once here; the inner loop is
    /// monomorphized over the concrete estimator and allocation-free.
    /// Outcomes are identical to feeding the same events through
    /// `on_instr` one at a time — asserted per outcome and per wire
    /// byte by the sim/serve suites and digest-checked on every
    /// `paco-load`/`hotpath` run. The lanes can be interleaved freely
    /// on one pipeline (they share the tables and the in-flight
    /// window).
    ///
    /// Two byte-identical kernels back the batched lane: this entry
    /// point runs the **fused register loop**, which keeps every
    /// per-event value in registers and wins on cache-resident table
    /// footprints — and the service caps table sizes such that every
    /// validated configuration *is* cache-resident on current hardware
    /// (`examples/kernel_ab.rs` holds the measurement). The chunked
    /// data-parallel kernel is reachable through
    /// [`run_batch_probed`](Self::run_batch_probed) and proven
    /// byte-identical by the same parity suites (see
    /// `docs/ARCHITECTURE.md`).
    pub fn run_batch(&mut self, events: &EventBatch, out: &mut OutcomeBatch) {
        match &mut self.lane {
            EstimatorLane::None(est) => self.core.process_batch_fused(est, events, out),
            EstimatorLane::Paco(est) => self.core.process_batch_fused(est, events, out),
            EstimatorLane::ThresholdCount(est) => self.core.process_batch_fused(est, events, out),
            EstimatorLane::StaticMrt(est) => self.core.process_batch_fused(est, events, out),
            EstimatorLane::PerBranchMrt(est) => self.core.process_batch_fused(est, events, out),
            EstimatorLane::AdaptiveMrt(est) => self.core.process_batch_fused(est, events, out),
        }
    }

    /// [`run_batch`](Self::run_batch) through the **chunked
    /// data-parallel kernel** — staged `LANE`-event chunks, the
    /// order-exact table pass, the chunk-at-a-time estimator pass, and
    /// (past `PREFETCH_FOOTPRINT_MIN`) one-chunk-ahead software
    /// prefetch — with a [`PassProbe`] attributing wall time to the
    /// passes; pass [`NoProbe`] to run the kernel unobserved. Outcomes
    /// are byte-identical to `run_batch` and the per-event reference
    /// (same parity suites and digest gates). A timing probe adds two
    /// clock reads per pass per chunk, so probed runs measure the
    /// breakdown, not headline throughput.
    pub fn run_batch_probed<P: PassProbe>(
        &mut self,
        events: &EventBatch,
        out: &mut OutcomeBatch,
        probe: &mut P,
    ) {
        match &mut self.lane {
            EstimatorLane::None(est) => self.core.process_batch(est, events, out, probe),
            EstimatorLane::Paco(est) => self.core.process_batch(est, events, out, probe),
            EstimatorLane::ThresholdCount(est) => self.core.process_batch(est, events, out, probe),
            EstimatorLane::StaticMrt(est) => self.core.process_batch(est, events, out, probe),
            EstimatorLane::PerBranchMrt(est) => self.core.process_batch(est, events, out, probe),
            EstimatorLane::AdaptiveMrt(est) => self.core.process_batch(est, events, out, probe),
        }
    }

    /// Serializes the pipeline's complete state — tables, history,
    /// estimator, in-flight window — prefixed with a version byte and the
    /// configuration hash, so a blob can only restore into an identically
    /// configured pipeline.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        out.push(STATE_VERSION);
        out.extend_from_slice(&self.core.config_hash.to_le_bytes());
        write_uvarint(out, self.core.events);
        write_uvarint(out, self.core.hist.bits());
        self.core.tournament.save_state(out);
        self.core.mdc.save_state(out);
        self.lane.as_dyn().save_state(out);
        write_uvarint(out, self.core.pending.len() as u64);
        for b in self.core.pending.iter() {
            b.token.save_state(out);
            write_uvarint(out, b.pc);
            write_uvarint(out, b.hist_before);
            out.push(b.taken as u8 | (b.predicted as u8) << 1 | (b.conditional as u8) << 2);
        }
    }

    /// Restores state saved by [`save_state`](Self::save_state),
    /// advancing `input` past the blob. `false` on version/config
    /// mismatch, truncation, or malformed fields; the pipeline must then
    /// be discarded (it may be partially restored).
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        let Some((&version, rest)) = input.split_first() else {
            return false;
        };
        if version != STATE_VERSION || rest.len() < 8 {
            return false;
        }
        let (hash_bytes, rest) = rest.split_at(8);
        if u64::from_le_bytes(hash_bytes.try_into().unwrap()) != self.core.config_hash {
            return false;
        }
        *input = rest;
        let Some(events) = read_uvarint(input) else {
            return false;
        };
        let Some(hist_bits) = read_uvarint(input) else {
            return false;
        };
        if !self.core.tournament.load_state(input)
            || !self.core.mdc.load_state(input)
            || !self.lane.as_dyn_mut().load_state(input)
        {
            return false;
        }
        let Some(pending_len) = read_uvarint(input) else {
            return false;
        };
        // save_state only runs between events, where the window has been
        // drained to at most resolve_lag — a longer pending list can only
        // come from a corrupt or hostile blob (and would overfill the
        // fixed-capacity ring on the next event).
        if pending_len > self.core.resolve_lag as u64 {
            return false;
        }
        let mut pending = Window::new(self.core.resolve_lag + 1);
        for _ in 0..pending_len {
            let Some(token) = BranchToken::load_state(input) else {
                return false;
            };
            let Some(pc) = read_uvarint(input) else {
                return false;
            };
            let Some(hist_before) = read_uvarint(input) else {
                return false;
            };
            let Some((&flags, rest)) = input.split_first() else {
                return false;
            };
            if flags > 0b111 {
                return false;
            }
            *input = rest;
            let conditional = flags & 4 != 0;
            let predicted = flags & 2 != 0;
            // The cached hash/index are pure functions of the
            // serialized fields; recomputing them here restores exactly
            // the values the saving pipeline carried.
            let pc_hash = if conditional {
                Pc::new(pc).table_hash()
            } else {
                0
            };
            pending.push_back(PendingBranch {
                token,
                pc,
                pc_hash,
                mdc_idx: if conditional {
                    self.core.mdc.index_hashed(pc_hash, hist_before, predicted)
                } else {
                    MdcIndex::default()
                },
                hist_before,
                taken: flags & 1 != 0,
                predicted,
                conditional,
            });
        }
        self.core.events = events;
        self.core.hist.restore(hist_bits);
        self.core.pending = pending;
        true
    }
}

// Sessions move across server worker threads; the pipeline must stay
// `Send` like everything else the engine fans out.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<OnlinePipeline>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use paco::{AdaptiveMrtConfig, PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
    use paco_workloads::{BenchmarkId, Workload};

    fn paco_tiny() -> OnlineConfig {
        // A short refresh period so tests cross MRT refresh boundaries.
        OnlineConfig::tiny(EstimatorKind::Paco(
            PacoConfig::paper().with_refresh_period(500),
        ))
    }

    fn all_kinds() -> [EstimatorKind; 6] {
        [
            EstimatorKind::None,
            EstimatorKind::Paco(PacoConfig::paper().with_refresh_period(500)),
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            EstimatorKind::StaticMrt,
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
            EstimatorKind::AdaptiveMrt(
                AdaptiveMrtConfig::paper()
                    .with_refresh_period(500)
                    .with_detect_window(16),
            ),
        ]
    }

    fn stream(n: usize, seed: u64) -> Vec<DynInstr> {
        let mut w = BenchmarkId::Gzip.build(seed);
        (0..n).map(|_| w.next_instr()).collect()
    }

    fn outcomes(config: &OnlineConfig, instrs: &[DynInstr]) -> Vec<OnlineOutcome> {
        let mut pipe = OnlinePipeline::new(config);
        instrs.iter().filter_map(|i| pipe.on_instr(i)).collect()
    }

    fn batched_outcomes(
        config: &OnlineConfig,
        instrs: &[DynInstr],
        batch_size: usize,
    ) -> Vec<OnlineOutcome> {
        lane_outcomes(config, instrs, batch_size, false)
    }

    /// Same stream through the chunked data-parallel kernel
    /// (`run_batch_probed` with `NoProbe`), which `run_batch` does not
    /// reach on its own — both kernels must match the reference.
    fn chunked_outcomes(
        config: &OnlineConfig,
        instrs: &[DynInstr],
        batch_size: usize,
    ) -> Vec<OnlineOutcome> {
        lane_outcomes(config, instrs, batch_size, true)
    }

    fn lane_outcomes(
        config: &OnlineConfig,
        instrs: &[DynInstr],
        batch_size: usize,
        chunked: bool,
    ) -> Vec<OnlineOutcome> {
        let mut pipe = OnlinePipeline::new(config);
        let mut batch = EventBatch::new();
        let mut out = OutcomeBatch::new();
        let mut collected = Vec::new();
        for chunk in instrs.chunks(batch_size) {
            batch.clear();
            batch.extend_from_instrs(chunk);
            out.clear();
            if chunked {
                pipe.run_batch_probed(&batch, &mut out, &mut NoProbe);
            } else {
                pipe.run_batch(&batch, &mut out);
            }
            collected.extend(out.iter());
        }
        collected
    }

    #[test]
    fn deterministic_across_runs() {
        let instrs = stream(20_000, 3);
        assert_eq!(
            outcomes(&paco_tiny(), &instrs),
            outcomes(&paco_tiny(), &instrs)
        );
    }

    #[test]
    fn non_control_instructions_are_ignored() {
        let mut pipe = OnlinePipeline::new(&paco_tiny());
        assert!(pipe.on_instr(&DynInstr::alu(Pc::new(0x100))).is_none());
        assert_eq!(pipe.events(), 0);
    }

    #[test]
    fn every_estimator_kind_serves() {
        let instrs = stream(5_000, 9);
        for kind in all_kinds() {
            let config = OnlineConfig::tiny(kind);
            let out = outcomes(&config, &instrs);
            assert!(!out.is_empty());
            assert_eq!(out, outcomes(&config, &instrs));
        }
    }

    #[test]
    fn batched_lane_is_outcome_identical_for_every_estimator() {
        // The keystone of the batched hot path: run_batch and on_instr
        // produce the same outcomes, bit for bit, on a stream long
        // enough to cross MRT refreshes and fill the in-flight window.
        let instrs = stream(30_000, 21);
        for kind in all_kinds() {
            let config = OnlineConfig::tiny(kind);
            let per_event = outcomes(&config, &instrs);
            for batch_size in [1, 7, 256] {
                assert_eq!(
                    per_event,
                    batched_outcomes(&config, &instrs, batch_size),
                    "fused-lane divergence: {kind:?} at batch size {batch_size}"
                );
                assert_eq!(
                    per_event,
                    chunked_outcomes(&config, &instrs, batch_size),
                    "chunked-kernel divergence: {kind:?} at batch size {batch_size}"
                );
            }
        }
    }

    #[test]
    fn lanes_interleave_on_one_pipeline() {
        // Events fetched per-event must resolve correctly inside a later
        // run_batch and vice versa: the window is shared.
        let instrs = stream(20_000, 33);
        let config = paco_tiny();
        let reference = outcomes(&config, &instrs);

        let mut pipe = OnlinePipeline::new(&config);
        let mut collected = Vec::new();
        let mut batch = EventBatch::new();
        let mut out = OutcomeBatch::new();
        for (round, chunk) in instrs.chunks(997).enumerate() {
            if round % 2 == 0 {
                collected.extend(chunk.iter().filter_map(|i| pipe.on_instr(i)));
            } else {
                batch.clear();
                batch.extend_from_instrs(chunk);
                out.clear();
                pipe.run_batch(&batch, &mut out);
                collected.extend(out.iter());
            }
        }
        assert_eq!(collected, reference);
    }

    #[test]
    fn batched_lane_skips_non_control_events() {
        let config = OnlineConfig::tiny(EstimatorKind::None);
        let mut pipe = OnlinePipeline::new(&config);
        let mut batch = EventBatch::new();
        batch.push(&DynInstr::alu(Pc::new(0x10)));
        batch.push(&DynInstr::branch(Pc::new(0x14), true, Pc::new(0x40)));
        batch.push(&DynInstr::alu(Pc::new(0x40)));
        let mut out = OutcomeBatch::new();
        pipe.run_batch(&batch, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(pipe.events(), 1);
    }

    #[test]
    fn window_holds_resolve_lag_branches() {
        let config = paco_tiny();
        let mut pipe = OnlinePipeline::new(&config);
        let out: Vec<_> = stream(20_000, 5)
            .iter()
            .filter_map(|i| pipe.on_instr(i))
            .collect();
        assert_eq!(pipe.in_flight(), config.resolve_lag);
        // Scores reflect a whole window, not a single branch: with PaCo
        // warmed past an MRT refresh, unresolved branches carry measured
        // encodings and the register rises above zero regularly. Windowed
        // sums can also exceed any single branch's 4096 saturation.
        let nonzero = out.iter().filter(|o| o.score > 0).count();
        assert!(
            nonzero * 10 > out.len(),
            "windowed scores should often be nonzero: {nonzero}/{}",
            out.len()
        );
    }

    #[test]
    fn predictions_beat_coin_flips() {
        let instrs = stream(50_000, 7);
        let out = outcomes(&paco_tiny(), &instrs);
        let cond: Vec<_> = instrs
            .iter()
            .filter(|i| i.class.is_conditional_branch())
            .collect();
        let miss = out.iter().filter(|o| o.mispredicted).count();
        assert!(!cond.is_empty());
        assert!(
            miss * 4 < cond.len(),
            "online mispredict rate implausibly high: {miss}/{}",
            cond.len()
        );
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        let config = paco_tiny();
        let instrs = stream(30_000, 11);
        let full = outcomes(&config, &instrs);

        // Run half, snapshot, restore into a fresh pipeline, run the rest.
        let mut first = OnlinePipeline::new(&config);
        let mut produced = Vec::new();
        let split = instrs.len() / 2;
        for i in &instrs[..split] {
            if let Some(o) = first.on_instr(i) {
                produced.push(o);
            }
        }
        let mut blob = Vec::new();
        first.save_state(&mut blob);
        drop(first);

        let mut resumed = OnlinePipeline::new(&config);
        let mut input = blob.as_slice();
        assert!(resumed.load_state(&mut input));
        assert!(input.is_empty(), "restore must consume the whole blob");
        for i in &instrs[split..] {
            if let Some(o) = resumed.on_instr(i) {
                produced.push(o);
            }
        }
        assert_eq!(produced, full);
    }

    #[test]
    fn snapshot_resume_continues_the_batched_lane() {
        // A snapshot taken mid-stream restores into a pipeline that
        // continues *batched* and still matches the per-event reference.
        let config = paco_tiny();
        let instrs = stream(24_000, 13);
        let full = outcomes(&config, &instrs);
        let split = instrs.len() / 3;

        let mut first = OnlinePipeline::new(&config);
        let mut produced: Vec<OnlineOutcome> = instrs[..split]
            .iter()
            .filter_map(|i| first.on_instr(i))
            .collect();
        let mut blob = Vec::new();
        first.save_state(&mut blob);

        let mut resumed = OnlinePipeline::new(&config);
        assert!(resumed.load_state(&mut blob.as_slice()));
        let mut batch = EventBatch::new();
        let mut out = OutcomeBatch::new();
        for chunk in instrs[split..].chunks(512) {
            batch.clear();
            batch.extend_from_instrs(chunk);
            out.clear();
            resumed.run_batch(&batch, &mut out);
            produced.extend(out.iter());
        }
        assert_eq!(produced, full);
    }

    #[test]
    fn snapshot_restores_full_window_at_ring_boundary() {
        // resolve_lag + 1 a power of two: the ring has exactly
        // resolve_lag + 1 slots, so a legitimately full window
        // (resolve_lag entries) must restore and still leave room for
        // the next event's push.
        let mut config = paco_tiny();
        config.resolve_lag = 31;
        let instrs = stream(24_000, 17);
        let full = outcomes(&config, &instrs);
        let split = instrs.len() / 2;

        let mut first = OnlinePipeline::new(&config);
        let mut produced: Vec<OnlineOutcome> = instrs[..split]
            .iter()
            .filter_map(|i| first.on_instr(i))
            .collect();
        assert_eq!(first.in_flight(), config.resolve_lag, "window is full");
        let mut blob = Vec::new();
        first.save_state(&mut blob);

        // Resume through the chunked kernel: a restored full window must
        // drive its closed-form resolve schedule correctly too.
        let mut resumed = OnlinePipeline::new(&config);
        assert!(resumed.load_state(&mut blob.as_slice()));
        let mut batch = EventBatch::new();
        let mut out = OutcomeBatch::new();
        for chunk in instrs[split..].chunks(256) {
            batch.clear();
            batch.extend_from_instrs(chunk);
            out.clear();
            resumed.run_batch_probed(&batch, &mut out, &mut NoProbe);
            produced.extend(out.iter());
        }
        assert_eq!(produced, full);
    }

    #[test]
    fn snapshot_rejects_overlong_pending_window() {
        // save_state runs between events, where the window holds at
        // most resolve_lag branches; a blob claiming more can only be
        // hostile or corrupt, and accepting it would overfill the
        // fixed-capacity ring on the next event. Splice an extra entry
        // into a real blob and require a clean refusal.
        use paco_types::wire::read_uvarint;

        let config = OnlineConfig::tiny(EstimatorKind::None);
        let mut pipe = OnlinePipeline::new(&config);
        for i in &stream(4_000, 23) {
            pipe.on_instr(i);
        }
        assert_eq!(pipe.in_flight(), config.resolve_lag);
        let mut blob = Vec::new();
        pipe.save_state(&mut blob);

        // Walk the blob to the pending section: version + config hash,
        // two uvarints (events, history), four counter tables (uvarint
        // length + that many bytes), no estimator state for
        // EstimatorKind::None.
        let mut cursor = &blob[1 + 8..];
        for _ in 0..2 {
            read_uvarint(&mut cursor).unwrap();
        }
        for _ in 0..4 {
            let len = read_uvarint(&mut cursor).unwrap() as usize;
            cursor = &cursor[len..];
        }
        let pending_at = blob.len() - cursor.len();
        let mut entries = &blob[pending_at..];
        let count = read_uvarint(&mut entries).unwrap();
        assert_eq!(count as usize, config.resolve_lag);

        // One entry: token (uvarint + 2 bytes + uvarint), pc uvarint,
        // history uvarint, flags byte.
        let entry_start = blob.len() - entries.len();
        let mut after = entries;
        read_uvarint(&mut after).unwrap();
        after = &after[2..];
        for _ in 0..3 {
            read_uvarint(&mut after).unwrap();
        }
        after = &after[1..];
        let entry = blob[entry_start..blob.len() - after.len()].to_vec();

        let mut forged = blob[..pending_at].to_vec();
        // resolve_lag (8) + 1 still fits a single-byte varint.
        forged.push(count as u8 + 1);
        forged.extend_from_slice(&blob[entry_start..]);
        forged.extend_from_slice(&entry);

        assert!(
            !OnlinePipeline::new(&config).load_state(&mut forged.as_slice()),
            "a pending window longer than resolve_lag must be refused"
        );
        // The unmodified blob still restores.
        assert!(OnlinePipeline::new(&config).load_state(&mut blob.as_slice()));
    }

    #[test]
    fn snapshot_rejects_foreign_config_and_corruption() {
        let mut pipe = OnlinePipeline::new(&paco_tiny());
        for i in &stream(2_000, 2) {
            pipe.on_instr(i);
        }
        let mut blob = Vec::new();
        pipe.save_state(&mut blob);

        // A differently configured pipeline must refuse the blob.
        let other = OnlineConfig::tiny(EstimatorKind::ThresholdCount(
            ThresholdCountConfig::paper_default(),
        ));
        assert!(!OnlinePipeline::new(&other).load_state(&mut blob.as_slice()));

        // Truncations at every boundary fail cleanly.
        for cut in [0, 1, 8, blob.len() / 2, blob.len() - 1] {
            assert!(
                !OnlinePipeline::new(&paco_tiny()).load_state(&mut &blob[..cut]),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn validate_rejects_hostile_configs() {
        let mut c = OnlineConfig::tiny(EstimatorKind::None);
        c.tournament.gshare_entries = 3;
        assert!(c.validate().is_err());

        let mut c = OnlineConfig::tiny(EstimatorKind::None);
        c.confidence.entries = OnlineConfig::MAX_TABLE_ENTRIES * 2;
        assert!(c.validate().is_err());

        let mut c = OnlineConfig::tiny(EstimatorKind::None);
        c.resolve_lag = usize::MAX;
        assert!(c.validate().is_err());

        assert!(OnlineConfig::paper(EstimatorKind::None).validate().is_ok());
        assert!(paco_tiny().validate().is_ok());
    }

    #[test]
    fn config_hash_distinguishes_configurations() {
        let a = paco_tiny().canon_hash();
        let b = OnlineConfig::paper(EstimatorKind::Paco(PacoConfig::paper())).canon_hash();
        let c = OnlineConfig::tiny(EstimatorKind::None).canon_hash();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, paco_tiny().canon_hash());
    }
}
