//! Pipeline gating and SMT fetch-prioritization policies.

use paco::{ConfidenceScore, EncodedProb};
use paco_types::canon::Canon;
use paco_types::Probability;

/// Pipeline gating / throttling policy (paper §5.1 and the selective
/// throttling extension of Aragón et al. discussed in §6).
///
/// The policy maps the current confidence score to an allowed fetch width.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GatingPolicy {
    /// Never gate.
    #[default]
    None,
    /// Conventional gating: stop fetch while the number of unresolved
    /// low-confidence branches is at least `gate_count` (Manne et al.).
    CountGate {
        /// The gate-count threshold (paper sweeps 1–10).
        gate_count: u64,
    },
    /// PaCo gating: stop fetch while the predicted goodpath probability is
    /// below a target (the encoded threshold is precomputed once, as the
    /// paper prescribes).
    PacoGate {
        /// Gate when the encoded confidence sum exceeds this value.
        encoded_threshold: u64,
    },
    /// Selective throttling on the low-confidence count: full width below
    /// `start`, then one width step lost per additional outstanding
    /// low-confidence branch.
    CountThrottle {
        /// Count at which throttling begins.
        start: u64,
    },
    /// Selective throttling on PaCo's encoded confidence: full width at or
    /// below `full`, zero width at or above `zero`, linear in between.
    PacoThrottle {
        /// Encoded sum at which throttling begins.
        full: u64,
        /// Encoded sum at which fetch stops entirely.
        zero: u64,
    },
}

impl GatingPolicy {
    /// Builds a [`GatingPolicy::PacoGate`] from a target goodpath
    /// probability: fetch is gated whenever the predicted goodpath
    /// probability falls below `min_goodpath`.
    ///
    /// This is the *only* place a probability is converted to the encoded
    /// domain — done once at configuration time (paper §3.2).
    pub fn paco_gate(min_goodpath: Probability) -> Self {
        GatingPolicy::PacoGate {
            encoded_threshold: EncodedProb::from_probability(min_goodpath).raw() as u64,
        }
    }

    /// Builds a [`GatingPolicy::PacoThrottle`] between two goodpath
    /// probabilities (`full_above` > `zero_below`).
    pub fn paco_throttle(full_above: Probability, zero_below: Probability) -> Self {
        GatingPolicy::PacoThrottle {
            full: EncodedProb::from_probability(full_above).raw() as u64,
            zero: EncodedProb::from_probability(zero_below).raw() as u64,
        }
    }

    /// The fetch width allowed this cycle given the estimator score.
    pub fn allowed_width(&self, score: ConfidenceScore, full_width: usize) -> usize {
        match *self {
            GatingPolicy::None => full_width,
            GatingPolicy::CountGate { gate_count } => {
                if score.0 >= gate_count {
                    0
                } else {
                    full_width
                }
            }
            GatingPolicy::PacoGate { encoded_threshold } => {
                if score.0 > encoded_threshold {
                    0
                } else {
                    full_width
                }
            }
            GatingPolicy::CountThrottle { start } => {
                if score.0 < start {
                    full_width
                } else {
                    full_width.saturating_sub((score.0 - start + 1) as usize)
                }
            }
            GatingPolicy::PacoThrottle { full, zero } => {
                if score.0 <= full {
                    full_width
                } else if score.0 >= zero {
                    0
                } else {
                    let span = (zero - full).max(1);
                    let frac = (zero - score.0) as f64 / span as f64;
                    ((full_width as f64 * frac).round() as usize).min(full_width)
                }
            }
        }
    }
}

impl Canon for GatingPolicy {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x22); // type tag
        match *self {
            GatingPolicy::None => out.push(0),
            GatingPolicy::CountGate { gate_count } => {
                out.push(1);
                gate_count.canon(out);
            }
            GatingPolicy::PacoGate { encoded_threshold } => {
                out.push(2);
                encoded_threshold.canon(out);
            }
            GatingPolicy::CountThrottle { start } => {
                out.push(3);
                start.canon(out);
            }
            GatingPolicy::PacoThrottle { full, zero } => {
                out.push(4);
                full.canon(out);
                zero.canon(out);
            }
        }
    }
}

/// SMT fetch prioritization policy: which thread fetches this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchPolicy {
    /// Alternate threads regardless of state.
    RoundRobin,
    /// ICOUNT (Tullsen et al.): the thread with the fewest in-flight
    /// instructions fetches.
    ICount,
    /// Confidence-based prioritization (Luo et al.): the thread whose path
    /// confidence estimator reports the *lower* score (more likely on the
    /// goodpath) fetches; ties fall back to ICOUNT.
    Confidence,
}

impl Canon for FetchPolicy {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x23); // type tag
        out.push(match self {
            FetchPolicy::RoundRobin => 0,
            FetchPolicy::ICount => 1,
            FetchPolicy::Confidence => 2,
        });
    }
}

impl FetchPolicy {
    /// Picks the preferred fetching thread from per-thread
    /// `(in_flight, score)` observations. `round` breaks remaining ties
    /// fairly.
    pub fn pick(&self, observations: &[(usize, ConfidenceScore)], round: u64) -> usize {
        self.priority_order(observations, round)[0]
    }

    /// Produces the full fetch-priority order. The front end offers the
    /// fetch port to threads in this order and the first one able to
    /// fetch this cycle (not stalled, not gated, pipe not full) takes it —
    /// a stalled high-priority thread must never idle the port while the
    /// other thread could use it (classic SMT fetch-policy practice; a
    /// strict-priority port assignment starves the low-confidence thread
    /// whenever its partner parks long-latency misses in the shared ROB).
    pub fn priority_order(
        &self,
        observations: &[(usize, ConfidenceScore)],
        round: u64,
    ) -> Vec<usize> {
        assert!(!observations.is_empty(), "no threads to pick from");
        let n = observations.len();
        let rr = (round as usize) % n;
        // Start from a rotated order so that exact ties alternate fairly.
        let mut order: Vec<usize> = (0..n).map(|k| (rr + k) % n).collect();
        match self {
            FetchPolicy::RoundRobin => {}
            FetchPolicy::ICount => {
                order.sort_by_key(|&i| observations[i].0);
            }
            FetchPolicy::Confidence => {
                // Lower score (more confident) first; ICOUNT among equals.
                order.sort_by_key(|&i| (observations[i].1, observations[i].0));
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn count_gate_cuts_at_threshold() {
        let g = GatingPolicy::CountGate { gate_count: 3 };
        assert_eq!(g.allowed_width(ConfidenceScore(2), 4), 4);
        assert_eq!(g.allowed_width(ConfidenceScore(3), 4), 0);
        assert_eq!(g.allowed_width(ConfidenceScore(9), 4), 0);
    }

    #[test]
    fn paco_gate_threshold_from_probability() {
        // Gate below 10% goodpath: encoded threshold ~3402.
        let g = GatingPolicy::paco_gate(p(0.10));
        match g {
            GatingPolicy::PacoGate { encoded_threshold } => {
                assert_eq!(encoded_threshold, 3402);
            }
            _ => unreachable!(),
        }
        assert_eq!(g.allowed_width(ConfidenceScore(3402), 4), 4);
        assert_eq!(g.allowed_width(ConfidenceScore(3403), 4), 0);
    }

    #[test]
    fn none_never_gates() {
        let g = GatingPolicy::None;
        assert_eq!(g.allowed_width(ConfidenceScore(u64::MAX), 4), 4);
    }

    #[test]
    fn count_throttle_degrades_gradually() {
        let g = GatingPolicy::CountThrottle { start: 2 };
        assert_eq!(g.allowed_width(ConfidenceScore(1), 4), 4);
        assert_eq!(g.allowed_width(ConfidenceScore(2), 4), 3);
        assert_eq!(g.allowed_width(ConfidenceScore(3), 4), 2);
        assert_eq!(g.allowed_width(ConfidenceScore(5), 4), 0);
    }

    #[test]
    fn paco_throttle_is_linear() {
        let g = GatingPolicy::PacoThrottle {
            full: 1000,
            zero: 3000,
        };
        assert_eq!(g.allowed_width(ConfidenceScore(500), 4), 4);
        assert_eq!(g.allowed_width(ConfidenceScore(2000), 4), 2);
        assert_eq!(g.allowed_width(ConfidenceScore(3000), 4), 0);
    }

    #[test]
    fn icount_picks_emptier_thread() {
        let obs = [(10, ConfidenceScore(0)), (3, ConfidenceScore(0))];
        assert_eq!(FetchPolicy::ICount.pick(&obs, 0), 1);
        assert_eq!(FetchPolicy::ICount.pick(&obs, 1), 1);
    }

    #[test]
    fn confidence_prefers_lower_score() {
        let obs = [(1, ConfidenceScore(5000)), (20, ConfidenceScore(40))];
        assert_eq!(FetchPolicy::Confidence.pick(&obs, 0), 1);
    }

    #[test]
    fn confidence_ties_fall_back_to_icount() {
        let obs = [(9, ConfidenceScore(7)), (2, ConfidenceScore(7))];
        assert_eq!(FetchPolicy::Confidence.pick(&obs, 0), 1);
    }

    #[test]
    fn round_robin_alternates() {
        let obs = [(0, ConfidenceScore(0)), (0, ConfidenceScore(0))];
        assert_eq!(FetchPolicy::RoundRobin.pick(&obs, 0), 0);
        assert_eq!(FetchPolicy::RoundRobin.pick(&obs, 1), 1);
    }
}
