//! Machine configurations (paper Tables 6 and 11).

use paco_branch::{BtbConfig, ConfidenceConfig, TournamentConfig};
use paco_types::canon::Canon;

/// Full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Pipeline width (fetch/dispatch/retire per cycle). Paper: 4
    /// (single-thread), 8 (SMT).
    pub width: usize,
    /// Reorder buffer entries, dynamically shared among threads.
    pub rob_entries: usize,
    /// Scheduler entries, dynamically shared.
    pub scheduler_entries: usize,
    /// Number of identical general-purpose functional units.
    pub fu_count: usize,
    /// Front-end depth in cycles (fetch → dispatch); together with
    /// branch-execution latency this yields the paper's "at least 10
    /// cycles" (single-thread) / "at least 20 cycles" (SMT) mispredict
    /// penalty.
    pub frontend_depth: u64,
    /// Extra bubble cycles on a fetch redirect after recovery.
    pub redirect_penalty: u64,
    /// Number of hardware threads.
    pub threads: usize,
    /// Direction predictor configuration (96KB hybrid).
    pub tournament: TournamentConfig,
    /// JRS confidence predictor configuration (8KB enhanced).
    pub confidence: ConfidenceConfig,
    /// Branch target buffer configuration.
    pub btb: BtbConfig,
    /// Return-address stack depth.
    pub ras_depth: usize,
    /// Integer multiply/divide latency.
    pub muldiv_latency: u64,
    /// Hard cap on simulated cycles (guards against deadlock bugs).
    pub max_cycles: u64,
}

impl SimConfig {
    /// Paper Table 6: the 4-wide out-of-order superscalar.
    pub const fn paper_4wide() -> Self {
        SimConfig {
            width: 4,
            rob_entries: 256,
            scheduler_entries: 64,
            fu_count: 4,
            frontend_depth: 8,
            redirect_penalty: 2,
            threads: 1,
            tournament: TournamentConfig::paper(),
            confidence: ConfidenceConfig::paper(),
            btb: BtbConfig::paper(),
            ras_depth: 32,
            muldiv_latency: 8,
            max_cycles: u64::MAX,
        }
    }

    /// Paper Table 11: the 8-wide SMT machine with two threads and a
    /// 512-entry ROB ("Misprediction Penalty: at least 20 cycles").
    pub const fn paper_smt_8wide() -> Self {
        SimConfig {
            width: 8,
            rob_entries: 512,
            scheduler_entries: 64,
            fu_count: 8,
            frontend_depth: 18,
            redirect_penalty: 2,
            threads: 2,
            tournament: TournamentConfig::paper(),
            confidence: ConfidenceConfig::paper(),
            btb: BtbConfig::paper(),
            ras_depth: 32,
            muldiv_latency: 8,
            max_cycles: u64::MAX,
        }
    }

    /// A scaled-down configuration for fast unit tests.
    pub const fn tiny() -> Self {
        SimConfig {
            width: 2,
            rob_entries: 32,
            scheduler_entries: 16,
            fu_count: 2,
            frontend_depth: 4,
            redirect_penalty: 1,
            threads: 1,
            tournament: TournamentConfig::tiny(),
            confidence: ConfidenceConfig::tiny(),
            btb: BtbConfig::tiny(),
            ras_depth: 8,
            muldiv_latency: 4,
            max_cycles: u64::MAX,
        }
    }

    /// Overrides the thread count, builder-style.
    pub const fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Default warmup instruction count (fast-forward analogue) for the
    /// 4-wide machine, mirroring the paper's methodology of
    /// fast-forwarding through initialization before measuring.
    ///
    /// Chosen as 2× PaCo's MRT refresh period so that even the halved SMT
    /// warmup of [`warmup_for`](Self::warmup_for) still spans at least one
    /// full 200k-cycle refresh — PaCo's encodings must be live (measured,
    /// not the cold-start defaults) when measurement starts. A
    /// compile-time assertion below ties this to the actual refresh
    /// period.
    pub const DEFAULT_WARMUP_INSTRS: u64 = 400_000;

    /// The effective warmup instruction count for this machine, given a
    /// requested base warmup (usually [`Self::DEFAULT_WARMUP_INSTRS`] or a
    /// `PACO_WARMUP` override).
    ///
    /// This is the single definition of the warmup scaling rule that used
    /// to be duplicated as ad-hoc `/ 2` magic across the experiment
    /// binaries: the wide SMT front end retires work roughly twice as fast
    /// as the 4-wide machine, so half the instructions cover the same
    /// number of refresh periods.
    pub const fn warmup_for(&self, base: u64) -> u64 {
        if self.width > 4 {
            base / 2
        } else {
            base
        }
    }
}

// The halved SMT warmup must still cover at least one MRT refresh period
// (the 8-wide machine sustains IPC > 1, so instructions bound cycles from
// above here).
const _: () = assert!(
    SimConfig::DEFAULT_WARMUP_INSTRS / 2 >= paco::PacoConfig::paper().refresh_period,
    "default warmup must span an MRT refresh period on every machine"
);

impl Canon for SimConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x20); // type tag
        self.width.canon(out);
        self.rob_entries.canon(out);
        self.scheduler_entries.canon(out);
        self.fu_count.canon(out);
        self.frontend_depth.canon(out);
        self.redirect_penalty.canon(out);
        self.threads.canon(out);
        self.tournament.canon(out);
        self.confidence.canon(out);
        self.btb.canon(out);
        self.ras_depth.canon(out);
        self.muldiv_latency.canon(out);
        self.max_cycles.canon(out);
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_4wide()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_match() {
        let t6 = SimConfig::paper_4wide();
        assert_eq!(t6.width, 4);
        assert_eq!(t6.rob_entries, 256);
        assert_eq!(t6.scheduler_entries, 64);
        assert_eq!(t6.fu_count, 4);
        // Minimum mispredict penalty: front-end depth + redirect ≥ 10.
        assert!(t6.frontend_depth + t6.redirect_penalty >= 10);

        let t11 = SimConfig::paper_smt_8wide();
        assert_eq!(t11.width, 8);
        assert_eq!(t11.rob_entries, 512);
        assert_eq!(t11.fu_count, 8);
        assert_eq!(t11.threads, 2);
        assert!(t11.frontend_depth + t11.redirect_penalty >= 20);
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::paper_smt_8wide().with_threads(1);
        assert_eq!(c.threads, 1);
    }
}
