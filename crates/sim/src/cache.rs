//! Set-associative cache models (L1I, L1D, unified L2).

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Latency added when this level misses (the paper expresses cache
    /// parameters as "miss = N cycles").
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// Paper Table 6 L1 I-cache: 32KB, 4-way, 128-byte lines, 10-cycle miss.
    pub const fn paper_l1i() -> Self {
        CacheConfig {
            bytes: 32 * 1024,
            ways: 4,
            line_bytes: 128,
            miss_penalty: 10,
        }
    }

    /// Paper Table 6 L1 D-cache: 32KB, 4-way, 64-byte lines, 10-cycle miss.
    pub const fn paper_l1d() -> Self {
        CacheConfig {
            bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
            miss_penalty: 10,
        }
    }

    /// Paper Table 6 L2: 512KB, 8-way, 128-byte lines, 100-cycle miss.
    pub const fn paper_l2() -> Self {
        CacheConfig {
            bytes: 512 * 1024,
            ways: 8,
            line_bytes: 128,
            miss_penalty: 100,
        }
    }

    /// Number of sets implied by the geometry.
    pub const fn sets(&self) -> usize {
        self.bytes / (self.ways * self.line_bytes)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    lru: u64,
}

/// A set-associative cache with LRU replacement.
///
/// Tracks only presence (no data); `access` returns whether the line hit
/// and installs it on miss.
///
/// # Examples
///
/// ```
/// use paco_sim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::paper_l1d());
/// assert!(!c.access(0x1000)); // cold miss
/// assert!(c.access(0x1000));  // now resident
/// assert!(c.access(0x1004));  // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways or a
    /// non-power-of-two line size or set count).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0 && config.ways > 0, "degenerate cache geometry");
        assert!(
            config.line_bytes.is_power_of_two() && sets.is_power_of_two(),
            "line size and set count must be powers of two"
        );
        Cache {
            lines: vec![Line::default(); sets * config.ways],
            set_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            config,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses `addr`; returns `true` on hit. Misses install the line.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line_addr = addr >> self.set_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];

        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, l) in ways.iter_mut().enumerate() {
            if l.valid && l.tag == tag {
                l.lru = self.tick;
                self.hits += 1;
                return true;
            }
            let age = if l.valid { l.lru } else { 0 };
            if age < oldest {
                oldest = age;
                victim = i;
            }
        }
        ways[victim] = Line {
            valid: true,
            tag,
            lru: self.tick,
        };
        self.misses += 1;
        false
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The two-level hierarchy used by the simulator: split L1s over a unified
/// L2 (paper Table 6).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// Instruction L1.
    pub l1i: Cache,
    /// Data L1.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
}

impl CacheHierarchy {
    /// Builds the paper's hierarchy.
    pub fn paper() -> Self {
        CacheHierarchy {
            l1i: Cache::new(CacheConfig::paper_l1i()),
            l1d: Cache::new(CacheConfig::paper_l1d()),
            l2: Cache::new(CacheConfig::paper_l2()),
        }
    }

    /// Instruction fetch at `addr`: returns the added stall in cycles
    /// (0 = L1I hit).
    pub fn fetch_latency(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            0
        } else if self.l2.access(addr) {
            self.l1i.config().miss_penalty
        } else {
            self.l1i.config().miss_penalty + self.l2.config().miss_penalty
        }
    }

    /// Data access at `addr`: returns total load-to-use latency in cycles
    /// (baseline hit latency of 2).
    pub fn data_latency(&mut self, addr: u64) -> u64 {
        const L1D_HIT: u64 = 2;
        if self.l1d.access(addr) {
            L1D_HIT
        } else if self.l2.access(addr) {
            L1D_HIT + self.l1d.config().miss_penalty
        } else {
            L1D_HIT + self.l1d.config().miss_penalty + self.l2.config().miss_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_paper_l1d() {
        let c = CacheConfig::paper_l1d();
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn hit_after_install() {
        let mut c = Cache::new(CacheConfig::paper_l1d());
        assert!(!c.access(0x4000));
        assert!(c.access(0x4000));
        assert!(c.access(0x403f)); // same 64B line
        assert!(!c.access(0x4040)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_within_set() {
        // Build a tiny 2-way cache: 2 sets x 2 ways x 64B = 256B.
        let cfg = CacheConfig {
            bytes: 256,
            ways: 2,
            line_bytes: 64,
            miss_penalty: 10,
        };
        let mut c = Cache::new(cfg);
        // Three lines mapping to set 0 (stride = sets*line = 128B).
        assert!(!c.access(0x0));
        assert!(!c.access(0x100));
        assert!(c.access(0x0)); // refresh 0x0; 0x100 is now LRU
        assert!(!c.access(0x200)); // evicts 0x100
        assert!(c.access(0x0));
        assert!(!c.access(0x100));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(CacheConfig::paper_l1d());
        // 1MB working set streamed twice: second pass still misses.
        for pass in 0..2 {
            let mut misses = 0;
            for i in 0..(1 << 20) / 64 {
                if !c.access(i * 64) {
                    misses += 1;
                }
            }
            assert!(misses > 15_000, "pass {pass} misses {misses}");
        }
    }

    #[test]
    fn hierarchy_latencies_are_tiered() {
        let mut h = CacheHierarchy::paper();
        let cold = h.data_latency(0x1_0000);
        assert_eq!(cold, 2 + 10 + 100);
        let warm = h.data_latency(0x1_0000);
        assert_eq!(warm, 2);
        // Evict from L1 but not L2: touch > 32KB of conflicting lines.
        for i in 0..1024 {
            h.data_latency(0x10_0000 + i * 64);
        }
        let l2_hit = h.data_latency(0x1_0000);
        assert_eq!(l2_hit, 2 + 10);
    }

    #[test]
    fn fetch_latency_zero_on_hit() {
        let mut h = CacheHierarchy::paper();
        assert_eq!(h.fetch_latency(0x40_0000), 110);
        assert_eq!(h.fetch_latency(0x40_0000), 0);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(CacheConfig {
            bytes: 3 * 1024,
            ways: 3,
            line_bytes: 96,
            miss_penalty: 1,
        });
    }
}
