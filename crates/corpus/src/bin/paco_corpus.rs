//! `paco-corpus`: inspect and materialize the synthetic workload corpus.
//!
//! ```text
//! paco-corpus list
//! paco-corpus gen --out-dir DIR [--instrs N] [--jobs J] [--seed S]
//!                 [--family NAME]... [--sim]
//! paco-corpus version
//! ```
//!
//! `list` prints the manifest (name, knobs, seed, canonical hash);
//! `gen` writes one `<name>.paco` trace file per selected entry, through
//! the same `TraceSink` hook the simulator's recorder uses. Output bytes
//! are a function of `(family, knobs, seed, --instrs)` alone — identical
//! across runs and `--jobs` levels.

use std::path::PathBuf;
use std::process::ExitCode;

use paco_corpus::{find_entry, generate, CorpusEntry, GenOptions, CORPUS};
use paco_types::canon::Canon;
use paco_types::fingerprint::code_fingerprint;

const USAGE: &str = "\
usage:
  paco-corpus list
  paco-corpus gen --out-dir DIR [--instrs N] [--jobs J] [--seed S]
                  [--family NAME]... [--sim]
  paco-corpus profiles
  paco-corpus version

families: loop_nest call_chain phased_flip markov_walk mispredict_storm
          biased_bimodal   (default: all)
defaults: --instrs 1000000, --jobs 1

`profiles` regenerates the reference calibration profiles the serving
layer's drift detector compares sessions against, in the exact shape of
the pinned REFERENCE_PROFILE_HASHES table.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            list();
            Ok(ExitCode::SUCCESS)
        }
        Some("gen") => gen(&args[1..]),
        Some("profiles") => {
            profiles();
            Ok(ExitCode::SUCCESS)
        }
        Some("version") | Some("--version") | Some("-V") => {
            println!(
                "paco-corpus {} fingerprint {:016x}",
                env!("CARGO_PKG_VERSION"),
                code_fingerprint()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("paco-corpus: {msg}");
            ExitCode::from(2)
        }
    }
}

fn list() {
    println!(
        "{:<18} {:<6} {:<18} knobs / sketch",
        "name", "seed", "canon hash"
    );
    for entry in CORPUS {
        let knobs: Vec<String> = entry
            .family
            .knobs()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "{:<18} {:<6} {:016x}  {}",
            entry.name,
            entry.seed,
            entry.family.canon_hash(),
            knobs.join(" ")
        );
        println!("{:<44}  {}", "", entry.family.describe());
    }
}

fn profiles() {
    let computed: Vec<_> = CORPUS
        .iter()
        .map(|entry| (entry.name, paco_corpus::compute_reference(entry)))
        .collect();
    println!(
        "{:<18} {:<8} {:<9} {:<9} {:<18}",
        "name", "events", "w/prob", "mispred", "canon hash"
    );
    for (name, p) in &computed {
        println!(
            "{:<18} {:<8} {:<9} {:<9.4} {:016x}",
            name,
            p.events(),
            p.with_prob(),
            p.mispredict_rate(),
            p.canon_hash()
        );
    }
    println!();
    println!(
        "pub const REFERENCE_PROFILE_HASHES: [(&str, u64); {}] = [",
        CORPUS.len()
    );
    for (name, p) in &computed {
        println!("    (\"{name}\", 0x{:016x}),", p.canon_hash());
    }
    println!("];");
}

fn gen(args: &[String]) -> Result<ExitCode, String> {
    let mut out_dir: Option<PathBuf> = None;
    let mut families: Vec<CorpusEntry> = Vec::new();
    let mut options = GenOptions::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out-dir" => out_dir = Some(PathBuf::from(value("--out-dir")?)),
            "--instrs" => options.instrs = parse_num(&value("--instrs")?, "--instrs")?,
            "--jobs" => options.jobs = parse_num(&value("--jobs")?, "--jobs")?,
            "--seed" => options.seed_override = Some(parse_num(&value("--seed")?, "--seed")?),
            "--sim" => options.sim = true,
            "--family" => {
                let name = value("--family")?;
                let entry = find_entry(&name).ok_or_else(|| {
                    let known: Vec<&str> = CORPUS.iter().map(|e| e.name).collect();
                    format!("unknown family `{name}` (known: {})", known.join(" "))
                })?;
                if !families.contains(&entry) {
                    families.push(entry);
                }
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let out_dir = out_dir.ok_or("gen needs --out-dir")?;
    if options.instrs == 0 || options.jobs == 0 {
        return Err("--instrs and --jobs must be at least 1".into());
    }
    let entries: &[CorpusEntry] = if families.is_empty() {
        &CORPUS
    } else {
        &families
    };

    let reports = generate(entries, &out_dir, &options).map_err(|e| e.to_string())?;
    for r in &reports {
        println!(
            "{:<18} seed {:<6} hash {:016x} -> {} ({} records)",
            r.name,
            r.seed,
            r.canon_hash,
            r.path.display(),
            r.records
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag} expects an integer, got `{v}`"))
}
