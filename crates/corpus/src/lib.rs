//! Synthetic workload corpus: parametric families for robustness sweeps.
//!
//! The twelve benchmark models in `paco-workloads` imitate the paper's
//! SPEC2000int suite — the workloads the estimator was *tuned against*.
//! This crate answers the complementary question: **where does the
//! estimator break?** It defines six parametric workload *families*,
//! each isolating one branch-behaviour mechanism:
//!
//! | family | mechanism |
//! |---|---|
//! | `loop_nest` | counted loops whose trips straddle the history length |
//! | `call_chain` | call/return-dominated walks stressing the RAS |
//! | `phased_flip` | easy/hard regime switches every *period* instructions |
//! | `markov_walk` | a pure Markov chain over PCs, per-site bias continuum |
//! | `mispredict_storm` | coin flips + bursts + indirect churn (adversarial) |
//! | `biased_bimodal` | near-always-taken floor (trivially predictable) |
//!
//! A [`CorpusFamily`] is a `Copy` recipe (discriminant + knob struct)
//! with a [`Canon`](paco_types::canon::Canon) encoding, so experiment
//! cells built over corpus workloads content-hash and cache exactly like
//! benchmark cells. Building a family with a seed yields a
//! [`CfgWorkload`](paco_workloads::CfgWorkload) — byte-identical for
//! equal `(recipe, seed)` on any platform or thread — and the
//! [`generate`] pipeline materializes entries into paco-trace files
//! through the simulator's `TraceSink` hook for `paco-served` /
//! `paco-load` use.
//!
//! The named default corpus is [`CORPUS`]; `paco-bench run robustness`
//! sweeps every estimator kind across it. The human-facing catalog —
//! knobs, behaviour sketches, expected difficulty — is
//! `docs/WORKLOADS.md`, kept honest by `tests/doc_drift.rs`.
//!
//! # Examples
//!
//! ```
//! use paco_corpus::{find_entry, CORPUS};
//! use paco_workloads::Workload;
//!
//! let entry = find_entry("markov_walk").unwrap();
//! let mut w = entry.family.build(entry.seed);
//! assert_eq!(w.name(), "markov_walk");
//! assert!(w.next_instr().pc.addr() > 0);
//! assert_eq!(CORPUS.len(), 6);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod family;
mod gen;
mod manifest;
mod profiles;

pub use family::{
    BiasedBimodalParams, CallChainParams, CorpusFamily, LoopNestParams, MarkovWalkParams,
    MispredictStormParams, PhasedFlipParams,
};
pub use gen::{generate, GenOptions, GenReport};
pub use manifest::{find_entry, CorpusEntry, CORPUS};
pub use profiles::{
    compute_reference, prob_bin, prob_bin_bits, reference_profile, CalibrationProfile, ProbBinner,
    PROFILE_BINS, PROFILE_WARMUP, PROFILE_WINDOW, REFERENCE_INSTRS, REFERENCE_PROFILE_HASHES,
};
