//! The parametric workload families.
//!
//! A [`CorpusFamily`] is a *recipe*: a family discriminant plus a small,
//! `Copy` knob struct. Building it with a seed yields a
//! [`CfgWorkload`] — the same generator substrate every benchmark model
//! uses — so a corpus workload drops into any simulator entry point,
//! records into paco-trace files, and streams into `paco-served`
//! sessions unchanged. The [`Canon`] encoding covers the discriminant,
//! the family name and every knob, so experiment cells over corpus
//! workloads hash and cache exactly like benchmark cells do.

use paco_types::canon::Canon;
use paco_types::{InstrClass, Pc, SplitMix64};
use paco_workloads::{
    BasicBlock, BehaviorSpec, CfgParams, CfgWorkload, ControlTerminator, DataParams, SyntheticCfg,
};

/// Knobs of the `loop_nest` family: nested counted loops.
///
/// Three loop levels with distinct trip counts, plus a block of biased
/// body branches. Short trips are learnable by global history; trips
/// longer than the tournament's 8 history bits are not — the knob that
/// separates "gshare solves it" from "bimodal floor".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopNestParams {
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Trip count of the innermost (hottest) loops.
    pub inner_trip: u32,
    /// Trip count of the middle loops.
    pub mid_trip: u32,
    /// Trip count of the outermost loops (chosen > history length).
    pub outer_trip: u32,
    /// Taken-probability of the non-loop body branches.
    pub body_bias: f64,
}

/// Knobs of the `call_chain` family: call/return-dominated control flow.
///
/// Raises the call and return terminator weights far above the benchmark
/// models', producing deep, RAS-stressing call chains with near-perfectly
/// predictable conditional sites in between.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallChainParams {
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Relative terminator weight of call sites.
    pub call_weight: f64,
    /// Relative terminator weight of return sites.
    pub return_weight: f64,
    /// Taken-probability of the conditional sites between calls.
    pub site_bias: f64,
}

/// Knobs of the `phased_flip` family: regime-switching branch behaviour.
///
/// Most conditional sites alternate between an easy and a hard regime
/// every `period` dynamic instructions — the paper's gcc/mcf pathology
/// distilled. Estimators keyed to *recent* predictability (the MRT)
/// should track the flips; lifetime averages should lag them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasedFlipParams {
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Dynamic instructions per phase.
    pub period: u64,
    /// Taken-probability in the easy phase.
    pub easy_taken: f64,
    /// Taken-probability in the hard phase.
    pub hard_taken: f64,
}

/// Knobs of the `markov_walk` family: a pure Markov chain over PCs.
///
/// Every state is one basic block ending in a conditional branch whose
/// taken-probability is drawn (deterministically from the seed) in
/// `[min_taken, max_taken]`, with a seed-chosen taken-target — the next
/// PC is a first-order Markov function of the current PC and a coin.
/// No loops, calls or phases: the cleanest test of per-site probability
/// estimation over a continuum of mispredict rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovWalkParams {
    /// Markov states (basic blocks); the last one closes the walk.
    pub states: usize,
    /// Body instructions per state block.
    pub body_len: usize,
    /// Lower bound of per-site taken-probability.
    pub min_taken: f64,
    /// Upper bound of per-site taken-probability.
    pub max_taken: f64,
}

/// Knobs of the `mispredict_storm` family: adversarial unpredictability.
///
/// Coin-flip conditional sites, Markov-modulated bursts and
/// target-churning indirect jumps — close to the information-theoretic
/// worst case. No estimator can predict the outcomes; a *good* one must
/// recognize that and report low confidence (calibration under storm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MispredictStormParams {
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Taken-probability of the coin-flip sites (0.5 = maximal entropy).
    pub coin_taken: f64,
    /// Behaviour-mix weight of the bursty sites.
    pub burst_weight: f64,
    /// Per-execution probability an indirect site switches targets.
    pub indirect_churn: f64,
}

/// Knobs of the `biased_bimodal` family: the easy end of the spectrum.
///
/// Almost every branch is near-always-taken; bimodal counters learn each
/// site in a handful of executions. Estimators should saturate at high
/// confidence — a floor check that nothing *under*-reports certainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasedBimodalParams {
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Taken-probability of the dominant sites.
    pub major_taken: f64,
    /// Taken-probability of the minority sites.
    pub minor_taken: f64,
}

/// A corpus workload family: discriminant + knobs.
///
/// `Copy` and canonically serializable on purpose: a family value is
/// embedded verbatim in `paco-bench` cell specs, where its [`Canon`]
/// bytes become part of the cell's content hash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorpusFamily {
    /// Nested counted loops (see [`LoopNestParams`]).
    LoopNest(LoopNestParams),
    /// Call/return-dominated control flow (see [`CallChainParams`]).
    CallChain(CallChainParams),
    /// Regime-switching behaviour (see [`PhasedFlipParams`]).
    PhasedFlip(PhasedFlipParams),
    /// Markov chain over PCs (see [`MarkovWalkParams`]).
    MarkovWalk(MarkovWalkParams),
    /// Adversarial unpredictability (see [`MispredictStormParams`]).
    MispredictStorm(MispredictStormParams),
    /// Near-always-taken easy branches (see [`BiasedBimodalParams`]).
    BiasedBimodal(BiasedBimodalParams),
}

/// Standard instruction-mix fractions shared by the CFG-built families.
const STD_LOAD_FRAC: f64 = 0.28;
const STD_STORE_FRAC: f64 = 0.11;
const STD_MULDIV_FRAC: f64 = 0.03;
const CODE_BASE: u64 = 0x0040_0000;

fn data_medium() -> DataParams {
    DataParams {
        base: 0x1000_0000,
        footprint: 1 << 21,
        streams: 4,
        locality: 0.65,
    }
}

impl CorpusFamily {
    /// The family's stable slug (used as workload name, manifest key and
    /// trace file stem).
    pub fn name(&self) -> &'static str {
        match self {
            CorpusFamily::LoopNest(_) => "loop_nest",
            CorpusFamily::CallChain(_) => "call_chain",
            CorpusFamily::PhasedFlip(_) => "phased_flip",
            CorpusFamily::MarkovWalk(_) => "markov_walk",
            CorpusFamily::MispredictStorm(_) => "mispredict_storm",
            CorpusFamily::BiasedBimodal(_) => "biased_bimodal",
        }
    }

    /// One-line branch-behaviour sketch for catalogs and `list` output.
    pub fn describe(&self) -> &'static str {
        match self {
            CorpusFamily::LoopNest(_) => {
                "nested counted loops; trips straddle the global-history length"
            }
            CorpusFamily::CallChain(_) => {
                "call/return-heavy walks stressing the RAS; easy conditionals"
            }
            CorpusFamily::PhasedFlip(_) => "sites flip between easy and hard regimes every period",
            CorpusFamily::MarkovWalk(_) => "pure Markov PC chain; per-site bias on a continuum",
            CorpusFamily::MispredictStorm(_) => {
                "coin-flip sites + bursts + indirect churn; adversarial"
            }
            CorpusFamily::BiasedBimodal(_) => {
                "near-always-taken sites; trivially predictable floor"
            }
        }
    }

    /// The family's knobs as `(name, value)` pairs, in declaration order.
    ///
    /// This is the single source the workload catalog
    /// (`docs/WORKLOADS.md`) is checked against: its per-family knob
    /// tables must list exactly these names with exactly these rendered
    /// values (see `crates/corpus/tests/doc_drift.rs`).
    pub fn knobs(&self) -> Vec<(&'static str, String)> {
        match self {
            CorpusFamily::LoopNest(p) => vec![
                ("blocks", p.blocks.to_string()),
                ("inner_trip", p.inner_trip.to_string()),
                ("mid_trip", p.mid_trip.to_string()),
                ("outer_trip", p.outer_trip.to_string()),
                ("body_bias", p.body_bias.to_string()),
            ],
            CorpusFamily::CallChain(p) => vec![
                ("blocks", p.blocks.to_string()),
                ("call_weight", p.call_weight.to_string()),
                ("return_weight", p.return_weight.to_string()),
                ("site_bias", p.site_bias.to_string()),
            ],
            CorpusFamily::PhasedFlip(p) => vec![
                ("blocks", p.blocks.to_string()),
                ("period", p.period.to_string()),
                ("easy_taken", p.easy_taken.to_string()),
                ("hard_taken", p.hard_taken.to_string()),
            ],
            CorpusFamily::MarkovWalk(p) => vec![
                ("states", p.states.to_string()),
                ("body_len", p.body_len.to_string()),
                ("min_taken", p.min_taken.to_string()),
                ("max_taken", p.max_taken.to_string()),
            ],
            CorpusFamily::MispredictStorm(p) => vec![
                ("blocks", p.blocks.to_string()),
                ("coin_taken", p.coin_taken.to_string()),
                ("burst_weight", p.burst_weight.to_string()),
                ("indirect_churn", p.indirect_churn.to_string()),
            ],
            CorpusFamily::BiasedBimodal(p) => vec![
                ("blocks", p.blocks.to_string()),
                ("major_taken", p.major_taken.to_string()),
                ("minor_taken", p.minor_taken.to_string()),
            ],
        }
    }

    /// Builds the workload, deterministically from `seed`.
    ///
    /// Same seed, same knobs → byte-identical instruction stream, on any
    /// platform and any thread (the stream is a pure function of the
    /// value and the seed; the corpus property suite asserts this).
    ///
    /// # Panics
    ///
    /// Panics on nonsensical knobs (zero blocks/states, probabilities
    /// outside `[0, 1]`, inverted ranges).
    pub fn build(&self, seed: u64) -> CfgWorkload {
        self.validate();
        match self {
            CorpusFamily::MarkovWalk(p) => build_markov(p, seed, self.name()),
            _ => {
                let (params, data) = self.cfg_params();
                let cfg = SyntheticCfg::build(&params, seed ^ family_salt(self.name()));
                CfgWorkload::new(self.name(), cfg, data, seed.wrapping_mul(0x9e37))
            }
        }
    }

    /// Panics on out-of-range knobs (see [`build`](Self::build)).
    fn validate(&self) {
        let prob = |v: f64, what: &str| {
            assert!(
                (0.0..=1.0).contains(&v),
                "{}: {what} outside [0, 1]",
                self.name()
            );
        };
        match self {
            CorpusFamily::LoopNest(p) => {
                assert!(p.blocks > 0, "loop_nest: blocks must be positive");
                assert!(p.inner_trip >= 2 && p.mid_trip >= 2 && p.outer_trip >= 2);
                prob(p.body_bias, "body_bias");
            }
            CorpusFamily::CallChain(p) => {
                assert!(p.blocks > 0, "call_chain: blocks must be positive");
                assert!(p.call_weight > 0.0 && p.return_weight > 0.0);
                prob(p.site_bias, "site_bias");
            }
            CorpusFamily::PhasedFlip(p) => {
                assert!(p.blocks > 0 && p.period > 0);
                prob(p.easy_taken, "easy_taken");
                prob(p.hard_taken, "hard_taken");
            }
            CorpusFamily::MarkovWalk(p) => {
                assert!(p.states >= 2, "markov_walk: needs at least two states");
                assert!(p.body_len >= 1);
                prob(p.min_taken, "min_taken");
                prob(p.max_taken, "max_taken");
                assert!(
                    p.min_taken <= p.max_taken,
                    "markov_walk: inverted taken range"
                );
            }
            CorpusFamily::MispredictStorm(p) => {
                assert!(p.blocks > 0);
                prob(p.coin_taken, "coin_taken");
                prob(p.indirect_churn, "indirect_churn");
                assert!(p.burst_weight >= 0.0);
            }
            CorpusFamily::BiasedBimodal(p) => {
                assert!(p.blocks > 0);
                prob(p.major_taken, "major_taken");
                prob(p.minor_taken, "minor_taken");
            }
        }
    }

    /// The CFG construction parameters of the randomized families.
    fn cfg_params(&self) -> (CfgParams, DataParams) {
        let base = |blocks, terms, mix, jitter| CfgParams {
            blocks,
            min_body: 3,
            max_body: 9,
            code_base: CODE_BASE,
            terminator_weights: terms,
            behavior_mix: mix,
            load_frac: STD_LOAD_FRAC,
            store_frac: STD_STORE_FRAC,
            muldiv_frac: STD_MULDIV_FRAC,
            indirect_fanout: 3,
            indirect_switch_prob: 0.002,
            bias_jitter: jitter,
        };
        match *self {
            CorpusFamily::LoopNest(p) => (
                base(
                    p.blocks,
                    [0.80, 0.10, 0.04, 0.04, 0.02],
                    vec![
                        (BehaviorSpec::Loop(p.inner_trip), 0.35),
                        (BehaviorSpec::Loop(p.mid_trip), 0.20),
                        (BehaviorSpec::Loop(p.outer_trip), 0.15),
                        (BehaviorSpec::Bias(p.body_bias), 0.30),
                    ],
                    0.25,
                ),
                DataParams::friendly(),
            ),
            CorpusFamily::CallChain(p) => (
                base(
                    p.blocks,
                    [0.30, 0.04, p.call_weight, p.return_weight, 0.02],
                    vec![
                        (BehaviorSpec::Bias(p.site_bias), 0.70),
                        (BehaviorSpec::Loop(6), 0.30),
                    ],
                    0.25,
                ),
                DataParams::friendly(),
            ),
            CorpusFamily::PhasedFlip(p) => (
                base(
                    p.blocks,
                    [0.76, 0.08, 0.07, 0.07, 0.02],
                    vec![
                        (
                            BehaviorSpec::Phased {
                                specs: vec![
                                    BehaviorSpec::Bias(p.easy_taken),
                                    BehaviorSpec::Bias(p.hard_taken),
                                ],
                                period: p.period,
                            },
                            0.65,
                        ),
                        (BehaviorSpec::Bias(0.97), 0.35),
                    ],
                    0.20,
                ),
                data_medium(),
            ),
            CorpusFamily::MispredictStorm(p) => {
                let mut params = base(
                    p.blocks,
                    [0.62, 0.08, 0.08, 0.08, 0.14],
                    vec![
                        (BehaviorSpec::Bias(p.coin_taken), 0.55),
                        (
                            BehaviorSpec::Burst {
                                calm_taken: 0.88,
                                enter_burst: 0.01,
                                exit_burst: 0.04,
                            },
                            p.burst_weight,
                        ),
                    ],
                    0.10,
                );
                params.indirect_fanout = 8;
                params.indirect_switch_prob = p.indirect_churn;
                (
                    params,
                    DataParams {
                        base: 0x1000_0000,
                        footprint: 1 << 24,
                        streams: 2,
                        locality: 0.40,
                    },
                )
            }
            CorpusFamily::BiasedBimodal(p) => (
                base(
                    p.blocks,
                    [0.78, 0.10, 0.05, 0.05, 0.02],
                    vec![
                        (BehaviorSpec::Bias(p.major_taken), 0.85),
                        (BehaviorSpec::Bias(p.minor_taken), 0.15),
                    ],
                    0.15,
                ),
                DataParams::friendly(),
            ),
            CorpusFamily::MarkovWalk(_) => unreachable!("markov_walk builds its CFG by hand"),
        }
    }
}

/// A per-family construction salt so two families with coincidentally
/// equal seeds still decorrelate their CFG layouts.
fn family_salt(name: &str) -> u64 {
    paco_types::canon::fnv1a64(name.as_bytes())
}

/// Hand-assembles the Markov-walk CFG: `states − 1` conditional blocks
/// (one Markov state each) plus a closing jump back to state 0, keeping
/// the walker's contiguous-fall-through invariant.
fn build_markov(p: &MarkovWalkParams, seed: u64, name: &str) -> CfgWorkload {
    let mut rng = SplitMix64::new(seed ^ family_salt(name));
    let states = p.states;
    let mut blocks = Vec::with_capacity(states);
    let mut behaviors = Vec::with_capacity(states - 1);
    let mut pc_cursor = CODE_BASE;
    for i in 0..states {
        let mut body = Vec::with_capacity(p.body_len);
        let mut deps = Vec::with_capacity(p.body_len);
        for _ in 0..p.body_len {
            let draw = rng.next_f64();
            let class = if draw < STD_LOAD_FRAC {
                InstrClass::Load
            } else if draw < STD_LOAD_FRAC + STD_STORE_FRAC {
                InstrClass::Store
            } else {
                InstrClass::Alu
            };
            body.push(class);
            let d0 = if rng.chance_f64(0.7) {
                1 + rng.below(4) as u32
            } else {
                0
            };
            deps.push([d0, 0]);
        }
        let terminator = if i == states - 1 {
            ControlTerminator::Jump { target: 0 }
        } else {
            let taken = p.min_taken + rng.next_f64() * (p.max_taken - p.min_taken);
            behaviors.push(BehaviorSpec::Bias(taken));
            ControlTerminator::Conditional {
                behavior: behaviors.len() - 1,
                taken_target: rng.below(states as u64) as usize,
            }
        };
        let start_pc = Pc::new(pc_cursor);
        pc_cursor += (p.body_len as u64 + 1) * Pc::INSTR_BYTES;
        blocks.push(BasicBlock {
            start_pc,
            body,
            deps,
            terminator,
        });
    }
    let cfg = SyntheticCfg::from_parts(blocks, behaviors);
    CfgWorkload::new(name, cfg, data_medium(), seed.wrapping_mul(0x9e37))
}

impl std::fmt::Display for CorpusFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Canon for CorpusFamily {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x60); // type tag
                        // Discriminant + name (so renames/reorders cannot silently alias
                        // cache keys), then every knob in declaration order.
        match self {
            CorpusFamily::LoopNest(p) => {
                out.push(0);
                self.name().canon(out);
                p.blocks.canon(out);
                p.inner_trip.canon(out);
                p.mid_trip.canon(out);
                p.outer_trip.canon(out);
                p.body_bias.canon(out);
            }
            CorpusFamily::CallChain(p) => {
                out.push(1);
                self.name().canon(out);
                p.blocks.canon(out);
                p.call_weight.canon(out);
                p.return_weight.canon(out);
                p.site_bias.canon(out);
            }
            CorpusFamily::PhasedFlip(p) => {
                out.push(2);
                self.name().canon(out);
                p.blocks.canon(out);
                p.period.canon(out);
                p.easy_taken.canon(out);
                p.hard_taken.canon(out);
            }
            CorpusFamily::MarkovWalk(p) => {
                out.push(3);
                self.name().canon(out);
                p.states.canon(out);
                p.body_len.canon(out);
                p.min_taken.canon(out);
                p.max_taken.canon(out);
            }
            CorpusFamily::MispredictStorm(p) => {
                out.push(4);
                self.name().canon(out);
                p.blocks.canon(out);
                p.coin_taken.canon(out);
                p.burst_weight.canon(out);
                p.indirect_churn.canon(out);
            }
            CorpusFamily::BiasedBimodal(p) => {
                out.push(5);
                self.name().canon(out);
                p.blocks.canon(out);
                p.major_taken.canon(out);
                p.minor_taken.canon(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CORPUS;
    use paco_workloads::Workload;

    #[test]
    fn every_family_builds_and_streams() {
        for entry in CORPUS {
            let mut w = entry.family.build(entry.seed);
            let mut control = 0u64;
            for _ in 0..20_000 {
                if w.next_instr().class.is_control() {
                    control += 1;
                }
            }
            assert!(
                control > 1_000,
                "{}: control fraction too low ({control})",
                entry.name
            );
            assert_eq!(w.name(), entry.family.name());
        }
    }

    #[test]
    fn streams_follow_architectural_successors() {
        for entry in CORPUS {
            let mut w = entry.family.build(entry.seed);
            let mut prev = w.next_instr();
            for _ in 0..20_000 {
                let cur = w.next_instr();
                assert_eq!(
                    cur.pc,
                    prev.successor(),
                    "{}: stream must follow architectural successors",
                    entry.name
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn canon_hashes_are_distinct_across_families() {
        let mut hashes: Vec<u64> = CORPUS.iter().map(|e| e.family.canon_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), CORPUS.len());
    }

    #[test]
    fn canon_covers_every_knob() {
        // Tweaking any knob must change the canonical bytes.
        let base = CorpusFamily::MarkovWalk(MarkovWalkParams {
            states: 64,
            body_len: 4,
            min_taken: 0.55,
            max_taken: 0.99,
        });
        let tweaked = [
            CorpusFamily::MarkovWalk(MarkovWalkParams {
                states: 65,
                ..markov(base)
            }),
            CorpusFamily::MarkovWalk(MarkovWalkParams {
                body_len: 5,
                ..markov(base)
            }),
            CorpusFamily::MarkovWalk(MarkovWalkParams {
                min_taken: 0.56,
                ..markov(base)
            }),
            CorpusFamily::MarkovWalk(MarkovWalkParams {
                max_taken: 0.98,
                ..markov(base)
            }),
        ];
        for t in tweaked {
            assert_ne!(base.canon_bytes(), t.canon_bytes(), "{t:?}");
        }
    }

    fn markov(f: CorpusFamily) -> MarkovWalkParams {
        match f {
            CorpusFamily::MarkovWalk(p) => p,
            _ => unreachable!(),
        }
    }

    #[test]
    fn markov_taken_targets_are_block_starts() {
        let f = CorpusFamily::MarkovWalk(MarkovWalkParams {
            states: 48,
            body_len: 3,
            min_taken: 0.5,
            max_taken: 0.99,
        });
        let mut w = f.build(7);
        let starts: std::collections::HashSet<u64> =
            w.cfg().blocks().iter().map(|b| b.start_pc.addr()).collect();
        for _ in 0..20_000 {
            let i = w.next_instr();
            if i.class.is_control() && i.taken {
                assert!(starts.contains(&i.target.addr()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "inverted taken range")]
    fn markov_rejects_inverted_range() {
        CorpusFamily::MarkovWalk(MarkovWalkParams {
            states: 8,
            body_len: 2,
            min_taken: 0.9,
            max_taken: 0.1,
        })
        .build(1);
    }
}
