//! Materializing corpus workloads into paco-trace files.
//!
//! Generation goes through the same [`paco_sim::TraceSink`] hook the simulator's
//! recorder uses: the default path feeds the goodpath stream straight
//! into a [`TraceRecorder`] sink (fast — no timing model), and the
//! `--sim` path attaches the identical sink to a cycle-level machine, so
//! both paths produce files any `paco-trace` / `paco-load` consumer
//! accepts. Entries are independent, so generation parallelizes over a
//! shared cursor exactly like the experiment engine — and, exactly like
//! the engine, the bytes written are a function of the entry alone,
//! never of the worker count.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use paco_sim::{EstimatorKind, MachineBuilder, SimConfig};
use paco_trace::{TraceError, TraceMeta, TraceRecorder};
use paco_types::canon::Canon;
use paco_workloads::Workload;

use crate::manifest::CorpusEntry;

/// Options for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Goodpath instructions to materialize per entry.
    pub instrs: u64,
    /// Worker threads (entries are independent; output is identical at
    /// any level).
    pub jobs: usize,
    /// Overrides every entry's manifest seed when set.
    pub seed_override: Option<u64>,
    /// Record through a live cycle-level simulation instead of streaming
    /// the generator directly (slower; also captures the in-flight tail).
    pub sim: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            instrs: 1_000_000,
            jobs: 1,
            seed_override: None,
            sim: false,
        }
    }
}

/// What one entry materialized to.
#[derive(Debug, Clone, PartialEq)]
pub struct GenReport {
    /// Manifest name of the entry.
    pub name: &'static str,
    /// The trace file written (`<out_dir>/<name>.paco`).
    pub path: PathBuf,
    /// Records in the file.
    pub records: u64,
    /// The seed the workload was built with.
    pub seed: u64,
    /// Canonical hash of the family recipe.
    pub canon_hash: u64,
}

/// Materializes `entries` into `<out_dir>/<name>.paco` trace files.
///
/// Reports come back in entry order regardless of `jobs`. The first
/// failing entry's error is returned (workers finish their in-flight
/// entries first).
pub fn generate(
    entries: &[CorpusEntry],
    out_dir: &Path,
    options: &GenOptions,
) -> Result<Vec<GenReport>, TraceError> {
    std::fs::create_dir_all(out_dir)?;
    let slots: Vec<OnceLock<Result<GenReport, TraceError>>> =
        entries.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let jobs = options.jobs.clamp(1, entries.len().max(1));

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(entry) = entries.get(i) else { break };
                let result = generate_one(entry, out_dir, options);
                slots[i]
                    .set(result)
                    .expect("each entry slot is written exactly once");
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("worker loop covered every entry"))
        .collect()
}

fn generate_one(
    entry: &CorpusEntry,
    out_dir: &Path,
    options: &GenOptions,
) -> Result<GenReport, TraceError> {
    let seed = options.seed_override.unwrap_or(entry.seed);
    let workload = entry.family.build(seed);
    let meta = TraceMeta::for_workload(&workload);
    let path = out_dir.join(format!("{}.paco", entry.name));
    let recorder = TraceRecorder::create(&path, &meta)?;

    if options.sim {
        let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
            .thread(Box::new(workload), EstimatorKind::None)
            .trace_sink(recorder.sink())
            .seed(seed)
            .build();
        machine.run(options.instrs);
    } else {
        let mut workload = workload;
        let mut sink = recorder.sink();
        for _ in 0..options.instrs {
            sink.record(&workload.next_instr());
        }
    }

    let summary = recorder.finish()?;
    Ok(GenReport {
        name: entry.name,
        path,
        records: summary.records,
        seed,
        canon_hash: entry.family.canon_hash(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CORPUS;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("paco-corpus-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn generates_one_file_per_entry_in_order() {
        let dir = tmp_dir("order");
        let options = GenOptions {
            instrs: 2_000,
            jobs: 3,
            ..GenOptions::default()
        };
        let reports = generate(&CORPUS[..3], &dir, &options).unwrap();
        assert_eq!(reports.len(), 3);
        for (report, entry) in reports.iter().zip(&CORPUS[..3]) {
            assert_eq!(report.name, entry.name);
            assert_eq!(report.records, 2_000);
            assert!(report.path.exists(), "{}", report.path.display());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generated_trace_opens_as_workload() {
        let dir = tmp_dir("open");
        let options = GenOptions {
            instrs: 3_000,
            ..GenOptions::default()
        };
        let reports = generate(&CORPUS[3..4], &dir, &options).unwrap();
        let mut replay = paco_trace::open_workload(&reports[0].path).unwrap();
        let mut live = CORPUS[3].family.build(CORPUS[3].seed);
        for _ in 0..3_000 {
            assert_eq!(replay.next_instr(), live.next_instr());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
