//! Reference calibration profiles: what each corpus family's confidence
//! stream *normally* looks like.
//!
//! The serving layer's drift detector (`paco-watch`) needs a labeled
//! baseline per workload family: "a healthy `biased_bimodal` session
//! distributes its predicted goodpath probabilities like *this* and
//! mispredicts at *this* rate". This module computes those baselines by
//! replaying each [`CORPUS`] entry through the default (paper-profile
//! PaCo) [`OnlinePipeline`] and summarizing the post-warmup confidence
//! stream as a [`CalibrationProfile`] — probability-bin occupancy plus a
//! mispredict rate.
//!
//! Profiles are *shipped as generated data*: they are a pure function of
//! `(family recipe, manifest seed, OnlineConfig::default(),`
//! [`REFERENCE_INSTRS`]`)`, computed lazily on first use and pinned by
//! canonical hash in [`REFERENCE_PROFILE_HASHES`]. A change to any
//! ingredient (family knobs, estimator defaults, the profile layout)
//! breaks the pinned-hash test and must re-pin the constants in the same
//! change — exactly the regime `docs/WORKLOADS.md` uses for family
//! hashes. Regenerate the table with `paco-corpus profiles`.

use std::sync::OnceLock;

use paco_sim::{OnlineConfig, OnlinePipeline};
use paco_types::canon::Canon;
use paco_workloads::Workload;

use crate::manifest::{CorpusEntry, CORPUS};

/// Number of probability bins in a calibration profile: 5%-wide bins
/// centered on 0%, 5%, …, 100%.
pub const PROFILE_BINS: usize = 21;

/// Rolling-window length, in control events, used both here (warmup
/// skipping) and by the serving layer's per-session watch windows.
pub const PROFILE_WINDOW: u64 = 2048;

/// Control events skipped before a profile starts recording, absorbing
/// the predictor's cold-start transient (empty tables predict poorly in
/// ways no steady-state baseline should include).
pub const PROFILE_WARMUP: u64 = 2 * PROFILE_WINDOW;

/// Workload instructions replayed to build each reference profile.
pub const REFERENCE_INSTRS: u64 = 160_000;

/// The probability bin an estimate falls into: `round(p * 20)` after
/// clamping to `[0, 1]`. Pure integer-exact IEEE arithmetic, so every
/// build bins identically. Inline: the serving hot loop calls this per
/// event, and without the hint it stays an out-of-line cross-crate
/// call.
#[inline]
pub fn prob_bin(p: f64) -> usize {
    let x = p.clamp(0.0, 1.0) * (PROFILE_BINS - 1) as f64;
    // round() spelled as trunc + half-test: baseline x86-64 lowers
    // `f64::round` to a libm call, which dominated the serving hot
    // loop. For non-negative x both `x as usize` (truncation) and
    // `x - trunc(x)` are exact, so this is bit-for-bit `x.round()`.
    let t = x as usize;
    (t + (x - t as f64 >= 0.5) as usize).min(PROFILE_BINS - 1)
}

/// [`prob_bin`] over raw IEEE-754 bits, no float arithmetic: for
/// non-negative doubles the bit pattern is monotone in the value, so
/// binning folds into comparisons against 20 precomputed bin-boundary
/// bit patterns. Negative values (sign bit set) and NaN (above the
/// +inf pattern) clamp-bin to 0, exactly as [`prob_bin`] does.
///
/// Bit-identical to `prob_bin(f64::from_bits(bits))` for **every**
/// `bits` — the boundary table is derived from `prob_bin` itself, and
/// the equivalence is pinned by test across boundaries, specials and a
/// pseudorandom bit sweep.
#[inline]
pub fn prob_bin_bits(bits: u64) -> usize {
    ProbBinner::new().bin_bits(bits)
}

/// Resolved handle to the bin-boundary table behind [`prob_bin_bits`]:
/// hot loops construct one before iterating so the per-event path is
/// pure integer compares with no `OnceLock` traffic.
#[derive(Debug, Clone, Copy)]
pub struct ProbBinner {
    bounds: &'static [u64; PROFILE_BINS - 1],
}

impl ProbBinner {
    const SIGN: u64 = 1 << 63;
    const INF: u64 = 0x7FF0_0000_0000_0000;

    /// Resolves the boundary table (computed once per process).
    #[inline]
    pub fn new() -> Self {
        static BOUNDS: OnceLock<[u64; PROFILE_BINS - 1]> = OnceLock::new();
        ProbBinner {
            bounds: BOUNDS.get_or_init(|| {
                // Boundary k = the smallest non-negative bit pattern
                // binning to k + 1, found by binary search in bit space
                // against the float oracle (bit order = value order for
                // non-negative doubles, and prob_bin is monotone in the
                // value, +inf clamping to the top bin).
                let mut bounds = [0u64; PROFILE_BINS - 1];
                for (k, slot) in bounds.iter_mut().enumerate() {
                    let (mut lo, mut hi) = (0u64, Self::INF);
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        if prob_bin(f64::from_bits(mid)) > k {
                            hi = mid;
                        } else {
                            lo = mid + 1;
                        }
                    }
                    *slot = lo;
                }
                bounds
            }),
        }
    }

    /// The bin for a probability given as raw IEEE-754 bits.
    #[inline]
    pub fn bin_bits(&self, bits: u64) -> usize {
        if bits & Self::SIGN != 0 || bits > Self::INF {
            return 0; // negative or NaN: prob_bin clamp-bins these to 0
        }
        self.bounds.partition_point(|&b| b <= bits)
    }
}

impl Default for ProbBinner {
    fn default() -> Self {
        Self::new()
    }
}

/// A calibration summary of a confidence stream: per-probability-bin
/// `(instances, correct predictions)` occupancy plus overall event and
/// mispredict counters. `Copy` and fixed-size so the serving layer can
/// keep one per session (and one per rolling window) with zero
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CalibrationProfile {
    bins: [(u64, u64); PROFILE_BINS],
    events: u64,
    mispredicts: u64,
}

impl CalibrationProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outcome: the predicted goodpath probability (if the
    /// estimator produced one) and whether the branch mispredicted.
    #[inline]
    pub fn record(&mut self, prob: Option<f64>, mispredicted: bool) {
        self.record_bin(prob.map(prob_bin), mispredicted);
    }

    /// Records one outcome whose probability is already binned. Same
    /// computation as [`record`](Self::record) (which delegates here),
    /// so the two cannot drift. Bins at or above [`PROFILE_BINS`] land
    /// in the top bin.
    #[inline]
    pub fn record_bin(&mut self, bin: Option<usize>, mispredicted: bool) {
        self.add_counts(1, mispredicted as u64);
        if let Some(b) = bin {
            self.add_bin(b, 1, !mispredicted as u64);
        }
    }

    /// Adds `events` events, `mispredicts` of them mispredicted, to the
    /// overall counters without binning anything. Batch recorders
    /// accumulate these two counters in registers across a chunk and
    /// settle them once; [`record_bin`](Self::record_bin) delegates
    /// here, so the per-event and batched spellings cannot drift.
    #[inline]
    pub fn add_counts(&mut self, events: u64, mispredicts: u64) {
        self.events += events;
        self.mispredicts += mispredicts;
    }

    /// Adds `instances` occupants (`correct` of them predicted
    /// correctly) to probability bin `bin`, clamped into range — the
    /// binning half of [`record_bin`](Self::record_bin), which
    /// delegates here.
    #[inline]
    pub fn add_bin(&mut self, bin: usize, instances: u64, correct: u64) {
        let b = &mut self.bins[bin.min(PROFILE_BINS - 1)];
        b.0 += instances;
        b.1 += correct;
    }

    /// Adds every counter of `other` into `self`. Lets a recorder keep
    /// only a small rolling window hot (fewer counters touched per
    /// event) and fold each completed window into a lifetime profile in
    /// one step: recording events into `w` and absorbing `w` is
    /// equivalent to recording the same events directly.
    pub fn absorb(&mut self, other: &CalibrationProfile) {
        self.events += other.events;
        self.mispredicts += other.mispredicts;
        for (bin, o) in self.bins.iter_mut().zip(&other.bins) {
            bin.0 += o.0;
            bin.1 += o.1;
        }
    }

    /// Resets the profile to empty (rolling-window reuse).
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// The `(instances, correct)` occupancy bins, low probability first.
    pub fn bins(&self) -> &[(u64, u64)] {
        &self.bins
    }

    /// Control events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mispredicted events recorded.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Events that carried a probability estimate (the sum of bin
    /// occupancy).
    pub fn with_prob(&self) -> u64 {
        self.bins.iter().map(|&(n, _)| n).sum()
    }

    /// Fraction of recorded events that mispredicted (0 when empty).
    pub fn mispredict_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.events as f64
        }
    }
}

impl Canon for CalibrationProfile {
    fn canon(&self, out: &mut Vec<u8>) {
        1u8.canon(out); // profile layout version
        self.bins[..].canon(out);
        self.events.canon(out);
        self.mispredicts.canon(out);
    }
}

/// Computes the reference profile of one corpus entry: replay
/// [`REFERENCE_INSTRS`] instructions of `entry.family` (manifest seed)
/// through a default-config [`OnlinePipeline`], skip the first
/// [`PROFILE_WARMUP`] control events, and profile the rest. Pure
/// function of its inputs — identical on every platform and run.
pub fn compute_reference(entry: &CorpusEntry) -> CalibrationProfile {
    let mut workload = entry.family.build(entry.seed);
    let mut pipeline = OnlinePipeline::new(&OnlineConfig::default());
    let mut profile = CalibrationProfile::new();
    let mut seen = 0u64;
    for _ in 0..REFERENCE_INSTRS {
        let instr = workload.next_instr();
        if let Some(outcome) = pipeline.on_instr(&instr) {
            seen += 1;
            if seen > PROFILE_WARMUP {
                profile.record(outcome.probability(), outcome.mispredicted);
            }
        }
    }
    profile
}

/// The pinned canonical hashes of every reference profile, in [`CORPUS`]
/// order. `cargo test -p paco-corpus` recomputes each profile and
/// asserts these values; regenerate with `paco-corpus profiles` when a
/// deliberate change moves them.
pub const REFERENCE_PROFILE_HASHES: [(&str, u64); 6] = [
    ("loop_nest", 0xe01f8f823ece17c6),
    ("call_chain", 0xf498c8095d7c6287),
    ("phased_flip", 0xf260528f1addc7e2),
    ("markov_walk", 0x15e51ff18f19972b),
    ("mispredict_storm", 0x675490d374a66e1f),
    ("biased_bimodal", 0x6234575da4ba3fcc),
];

/// The reference profile for the named corpus family (case-insensitive),
/// computed on first use and cached for the process lifetime. `None` for
/// names outside the manifest.
pub fn reference_profile(name: &str) -> Option<&'static CalibrationProfile> {
    // The const exists only as an array-repeat initializer (OnceLock is
    // not Copy and inline-const array init needs a newer MSRV).
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: OnceLock<CalibrationProfile> = OnceLock::new();
    static CELLS: [OnceLock<CalibrationProfile>; CORPUS.len()] = [EMPTY; CORPUS.len()];
    let index = CORPUS
        .iter()
        .position(|e| e.name.eq_ignore_ascii_case(name))?;
    Some(CELLS[index].get_or_init(|| compute_reference(&CORPUS[index])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_bin_covers_the_unit_interval() {
        assert_eq!(prob_bin(0.0), 0);
        assert_eq!(prob_bin(0.024), 0);
        assert_eq!(prob_bin(0.026), 1);
        assert_eq!(prob_bin(0.5), 10);
        assert_eq!(prob_bin(1.0), 20);
        assert_eq!(prob_bin(-3.0), 0);
        assert_eq!(prob_bin(7.0), 20);
        assert_eq!(prob_bin(f64::NAN), 0); // clamp(NaN) -> 0.0 bound
    }

    #[test]
    fn prob_bin_bits_matches_the_float_oracle_everywhere() {
        let check = |bits: u64| {
            assert_eq!(
                prob_bin_bits(bits),
                prob_bin(f64::from_bits(bits)),
                "bits={bits:#018x}"
            );
        };
        // Every bin-center neighborhood, a few ulps each way (wrapping
        // below +0.0 lands on huge negative-NaN patterns, also covered).
        for k in 0..PROFILE_BINS {
            let center = k as f64 / (PROFILE_BINS - 1) as f64;
            for delta in -3i64..=3 {
                check((center.to_bits() as i64).wrapping_add(delta) as u64);
            }
        }
        // The exact boundary patterns and their immediate neighbors.
        let binner = ProbBinner::new();
        for k in 1..PROFILE_BINS {
            let boundary = f64::from_bits(binner.bounds[k - 1]);
            for delta in -2i64..=2 {
                check((boundary.to_bits() as i64).wrapping_add(delta) as u64);
            }
        }
        // Specials: zeros, out-of-range, infinities, NaNs, subnormals.
        for v in [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            0.5,
            7.0,
            -3.0,
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            5e-324,
        ] {
            check(v.to_bits());
        }
        // A deterministic pseudorandom sweep of the whole bit space.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            check(x);
        }
    }

    #[test]
    fn record_accumulates_bins_and_counters() {
        let mut p = CalibrationProfile::new();
        p.record(Some(0.9), false);
        p.record(Some(0.9), true);
        p.record(None, true);
        assert_eq!(p.events(), 3);
        assert_eq!(p.mispredicts(), 2);
        assert_eq!(p.with_prob(), 2);
        assert_eq!(p.bins()[prob_bin(0.9)], (2, 1));
        assert!((p.mispredict_rate() - 2.0 / 3.0).abs() < 1e-12);
        p.clear();
        assert_eq!(p, CalibrationProfile::new());
    }

    /// Recording into a window and absorbing it must equal recording
    /// directly — the equivalence the serving layer's deferred lifetime
    /// fold relies on.
    #[test]
    fn absorb_equals_direct_recording() {
        let events = [(Some(0.9), false), (Some(0.1), true), (None, true)];
        let mut direct = CalibrationProfile::new();
        let mut total = CalibrationProfile::new();
        for round in 0..3 {
            let mut window = CalibrationProfile::new();
            for &(p, m) in &events[round..] {
                direct.record(p, m);
                window.record(p, m);
            }
            total.absorb(&window);
        }
        assert_eq!(total, direct);
    }

    /// The shipped-data contract: regenerating every reference profile
    /// reproduces the pinned canonical hashes. A deliberate change to
    /// family knobs, estimator defaults or the profile layout must
    /// re-pin `REFERENCE_PROFILE_HASHES` in the same change
    /// (`paco-corpus profiles` prints the new table).
    #[test]
    fn reference_profiles_match_pinned_hashes() {
        assert_eq!(REFERENCE_PROFILE_HASHES.len(), CORPUS.len());
        for (entry, &(name, hash)) in CORPUS.iter().zip(&REFERENCE_PROFILE_HASHES) {
            assert_eq!(entry.name, name, "pin order must match the manifest");
            let profile = reference_profile(name).unwrap();
            assert!(
                profile.events() > 0 && profile.with_prob() > 0,
                "{name}: reference profile must not be empty"
            );
            assert_eq!(
                profile.canon_hash(),
                hash,
                "{name}: reference profile drifted from its pinned hash \
                 (re-pin via `paco-corpus profiles` if deliberate)"
            );
        }
    }

    #[test]
    fn unknown_family_has_no_profile() {
        assert!(reference_profile("no_such_family").is_none());
        // Case-insensitive like `find_entry`.
        assert!(reference_profile("BIASED_BIMODAL").is_some());
    }
}
