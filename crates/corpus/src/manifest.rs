//! The named corpus: one default entry per family.
//!
//! An entry pins a family's knobs *and* its seed, so a corpus name is a
//! complete, reproducible workload identity: `name → family + knobs +
//! seed`, with the [`Canon`](paco_types::canon::Canon) hash of the
//! family value serving as the drift-proof fingerprint quoted in
//! `docs/WORKLOADS.md` and printed by `paco-corpus list`.

use crate::family::{
    BiasedBimodalParams, CallChainParams, CorpusFamily, LoopNestParams, MarkovWalkParams,
    MispredictStormParams, PhasedFlipParams,
};

/// One named corpus workload: a family recipe plus its default seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusEntry {
    /// Manifest name (equals the family slug for the default corpus).
    pub name: &'static str,
    /// The family recipe.
    pub family: CorpusFamily,
    /// Default build seed (decorrelates entries from one another).
    pub seed: u64,
}

/// The default corpus, in catalog order (easy → adversarial is *not*
/// the order; it is grouped by mechanism: loops, calls, phases, chains,
/// storms, floors).
pub const CORPUS: [CorpusEntry; 6] = [
    CorpusEntry {
        name: "loop_nest",
        family: CorpusFamily::LoopNest(LoopNestParams {
            blocks: 260,
            inner_trip: 4,
            mid_trip: 7,
            outer_trip: 19,
            body_bias: 0.93,
        }),
        seed: 101,
    },
    CorpusEntry {
        name: "call_chain",
        family: CorpusFamily::CallChain(CallChainParams {
            blocks: 520,
            call_weight: 0.27,
            return_weight: 0.27,
            site_bias: 0.96,
        }),
        seed: 102,
    },
    CorpusEntry {
        name: "phased_flip",
        family: CorpusFamily::PhasedFlip(PhasedFlipParams {
            blocks: 340,
            period: 60000,
            easy_taken: 0.995,
            hard_taken: 0.72,
        }),
        seed: 103,
    },
    CorpusEntry {
        name: "markov_walk",
        family: CorpusFamily::MarkovWalk(MarkovWalkParams {
            states: 160,
            body_len: 5,
            min_taken: 0.52,
            max_taken: 0.995,
        }),
        seed: 104,
    },
    CorpusEntry {
        name: "mispredict_storm",
        family: CorpusFamily::MispredictStorm(MispredictStormParams {
            blocks: 300,
            coin_taken: 0.5,
            burst_weight: 0.45,
            indirect_churn: 0.3,
        }),
        seed: 105,
    },
    CorpusEntry {
        name: "biased_bimodal",
        family: CorpusFamily::BiasedBimodal(BiasedBimodalParams {
            blocks: 240,
            major_taken: 0.997,
            minor_taken: 0.9,
        }),
        seed: 106,
    },
];

/// Looks a corpus entry up by manifest name (case-insensitive).
pub fn find_entry(name: &str) -> Option<CorpusEntry> {
    CORPUS
        .iter()
        .copied()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_match_family_slugs() {
        let mut names: Vec<&str> = CORPUS.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CORPUS.len());
        for e in CORPUS {
            assert_eq!(e.name, e.family.name(), "default corpus uses family slugs");
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = CORPUS.iter().map(|e| e.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), CORPUS.len());
    }

    #[test]
    fn lookup_round_trips() {
        for e in CORPUS {
            assert_eq!(find_entry(e.name), Some(e));
            assert_eq!(find_entry(&e.name.to_uppercase()), Some(e));
        }
        assert_eq!(find_entry("no_such_family"), None);
    }
}
