//! Property suite for the corpus generators: seeded determinism (the
//! contract every cache hash and parity digest rests on), seed
//! sensitivity, worker-count invariance, and trace round-tripping.

use std::io::Cursor;

use paco_corpus::{generate, GenOptions, CORPUS};
use paco_trace::{TraceMeta, TraceReader, TraceWriter};
use paco_types::DynInstr;
use paco_workloads::Workload;
use proptest::prelude::*;

fn any_entry() -> impl Strategy<Value = usize> {
    0usize..CORPUS.len()
}

/// Streams `n` instructions of an entry into an in-memory trace image.
fn trace_bytes(entry: usize, seed: u64, n: u64) -> Vec<u8> {
    let mut workload = CORPUS[entry].family.build(seed);
    let meta = TraceMeta::for_workload(&workload);
    let mut writer = TraceWriter::new(Cursor::new(Vec::new()), &meta).unwrap();
    for _ in 0..n {
        writer.push_instr(&workload.next_instr()).unwrap();
    }
    let (_, cursor) = writer.finish().unwrap();
    cursor.into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same recipe + same seed → byte-identical trace files, run to run.
    #[test]
    fn same_seed_is_byte_identical(entry in any_entry(), seed in 1u64..1_000_000) {
        prop_assert_eq!(trace_bytes(entry, seed, 4_000), trace_bytes(entry, seed, 4_000));
    }

    /// Distinct seeds produce distinct streams (the corpus would silently
    /// collapse to one workload per family otherwise).
    #[test]
    fn distinct_seeds_differ(entry in any_entry(), seed in 1u64..1_000_000) {
        prop_assert_ne!(
            trace_bytes(entry, seed, 4_000),
            trace_bytes(entry, seed ^ 0x5eed, 4_000)
        );
    }

    /// A generated trace round-trips through `TraceWriter`/`TraceReader`:
    /// the decoded records equal the generator's stream, record for
    /// record, and the header carries the workload identity.
    #[test]
    fn traces_round_trip(entry in any_entry(), seed in 1u64..1_000_000) {
        let bytes = trace_bytes(entry, seed, 3_000);
        let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
        prop_assert_eq!(reader.meta().name.as_str(), CORPUS[entry].family.name());
        let mut live = CORPUS[entry].family.build(seed);
        let mut records = 0u64;
        while let Some(r) = reader.next_record().unwrap() {
            prop_assert_eq!(DynInstr::from(r), live.next_instr());
            records += 1;
        }
        prop_assert_eq!(records, 3_000);
    }
}

/// `generate` writes byte-identical files at every `--jobs` level: the
/// bytes are a function of the entry alone, never of worker scheduling.
#[test]
fn generation_is_jobs_invariant() {
    let base = std::env::temp_dir().join(format!("paco-corpus-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let gen_with = |jobs: usize| {
        let dir = base.join(format!("jobs{jobs}"));
        let options = GenOptions {
            instrs: 5_000,
            jobs,
            ..GenOptions::default()
        };
        let reports = generate(&CORPUS, &dir, &options).unwrap();
        reports
            .into_iter()
            .map(|r| (r.name, std::fs::read(&r.path).unwrap()))
            .collect::<Vec<_>>()
    };
    let one = gen_with(1);
    let many = gen_with(6);
    assert_eq!(one.len(), CORPUS.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in one.iter().zip(&many) {
        assert_eq!(name_a, name_b);
        assert_eq!(bytes_a, bytes_b, "{name_a}: --jobs changed the bytes");
    }
    let _ = std::fs::remove_dir_all(&base);
}
