//! Doc-drift guard: the corpus catalog in `docs/WORKLOADS.md` must match
//! the generator registry in `paco_corpus::CORPUS`.
//!
//! Mirrors `crates/serve/tests/doc_drift.rs` (which pins PROTOCOL.md to
//! `proto.rs`): the document is normative prose for humans; this suite
//! parses its manifest and per-family knob tables and compares them
//! against the code, so neither can change without the other. The canon
//! hash column makes the check airtight — it fingerprints the whole
//! recipe, so even a knob this parser missed would still trip it.

use std::path::Path;

use paco_corpus::CORPUS;
use paco_types::canon::Canon;

fn workloads_md() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/WORKLOADS.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Splits a markdown table row into trimmed cells (empty edge cells
/// from the leading/trailing `|` removed).
fn row_cells(line: &str) -> Option<Vec<String>> {
    let line = line.trim();
    if !line.starts_with('|') || !line.ends_with('|') || line.len() < 2 {
        return None;
    }
    let cells: Vec<String> = line[1..line.len() - 1]
        .split('|')
        .map(|c| c.trim().to_string())
        .collect();
    // Skip separator rows (|---|---|).
    if cells
        .iter()
        .all(|c| c.chars().all(|ch| ch == '-' || ch == ':'))
    {
        return None;
    }
    Some(cells)
}

/// Strips backticks from a code-literal cell.
fn code(cell: &str) -> &str {
    cell.trim_matches('`')
}

#[test]
fn manifest_table_matches_registry() {
    let doc = workloads_md();
    // Manifest rows: | `name` | seed | `hash` | sketch |
    let mut documented = Vec::new();
    for line in doc.lines() {
        let Some(cells) = row_cells(line) else {
            continue;
        };
        if cells.len() != 4 || !cells[0].starts_with('`') {
            continue;
        }
        let Ok(seed) = cells[1].parse::<u64>() else {
            continue;
        };
        documented.push((
            code(&cells[0]).to_string(),
            seed,
            code(&cells[2]).to_string(),
        ));
    }
    assert_eq!(
        documented.len(),
        CORPUS.len(),
        "docs/WORKLOADS.md manifest table must list every corpus entry exactly once: {documented:?}"
    );
    for entry in CORPUS {
        let row = documented
            .iter()
            .find(|(name, _, _)| name == entry.name)
            .unwrap_or_else(|| panic!("docs/WORKLOADS.md: no manifest row for {}", entry.name));
        assert_eq!(row.1, entry.seed, "{}: documented seed drifted", entry.name);
        assert_eq!(
            row.2,
            format!("{:016x}", entry.family.canon_hash()),
            "{}: documented canon hash drifted — the recipe changed; update the \
             manifest row AND the knob table (and rerun the results section)",
            entry.name
        );
    }
    // No stale rows: every documented name must exist in the registry.
    for (name, _, _) in &documented {
        assert!(
            CORPUS.iter().any(|e| e.name == name),
            "docs/WORKLOADS.md documents unknown family `{name}`"
        );
    }
}

#[test]
fn knob_tables_match_registry() {
    let doc = workloads_md();
    for entry in CORPUS {
        let heading = format!("### `{}`", entry.name);
        let section_start = doc
            .find(&heading)
            .unwrap_or_else(|| panic!("docs/WORKLOADS.md: no section {heading}"));
        let section = &doc[section_start + heading.len()..];
        let section = match section.find("\n### ") {
            Some(end) => &section[..end],
            None => section,
        };
        // Knob rows: | `knob` | value |
        let mut documented = Vec::new();
        for line in section.lines() {
            let Some(cells) = row_cells(line) else {
                continue;
            };
            if cells.len() != 2 || !cells[0].starts_with('`') {
                continue;
            }
            documented.push((code(&cells[0]).to_string(), cells[1].clone()));
        }
        let expected: Vec<(String, String)> = entry
            .family
            .knobs()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(
            documented, expected,
            "{}: knob table drifted from CorpusFamily::knobs()",
            entry.name
        );
    }
}

#[test]
fn every_family_section_quotes_a_difficulty() {
    // Each family section promises an estimator-difficulty sketch; keep
    // the promise literal so the catalog stays useful.
    let doc = workloads_md();
    for entry in CORPUS {
        let heading = format!("### `{}`", entry.name);
        let start = doc.find(&heading).expect("section exists (tested above)");
        let section = &doc[start..];
        let section = match section[heading.len()..].find("\n### ") {
            Some(end) => &section[..heading.len() + end],
            None => section,
        };
        assert!(
            section.contains("**Expected"),
            "{}: section must state the expected estimator difficulty",
            entry.name
        );
    }
}
