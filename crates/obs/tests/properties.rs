//! Property tests for the log-linear histogram: merge is associative
//! and commutative, atomic snapshots round-trip against plain
//! recording, and histogram quantiles stay within one bucket of the
//! exact-sort `paco_analysis::percentile` oracle.

use paco_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot::new();
    for &v in values {
        snap.record(v);
    }
    snap
}

/// Mixed-magnitude samples: small exact values, mid-range, and huge,
/// so buckets from the identity region through deep octaves are hit.
fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u32..3, any::<u64>()).prop_map(|(scale, raw)| match scale {
            0 => raw % 16,
            1 => raw % 1_000_000,
            _ => raw,
        }),
        0..200,
    )
}

proptest! {
    /// merge(a, b) sees every sample exactly once, in either order.
    #[test]
    fn merge_is_commutative(
        xs in values_strategy(),
        ys in values_strategy(),
    ) {
        let a = record_all(&xs);
        let b = record_all(&ys);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == recording everything into one.
    #[test]
    fn merge_is_associative(
        xs in values_strategy(),
        ys in values_strategy(),
        zs in values_strategy(),
    ) {
        let (a, b, c) = (record_all(&xs), record_all(&ys), record_all(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut pooled: Vec<u64> = xs.clone();
        pooled.extend(&ys);
        pooled.extend(&zs);
        prop_assert_eq!(&left, &record_all(&pooled));
    }

    /// The atomic histogram's snapshot matches plain recording of the
    /// same samples: the concurrent structure loses nothing.
    #[test]
    fn atomic_snapshot_round_trips(values in values_strategy()) {
        let atomic = Histogram::new();
        for &v in &values {
            atomic.record(v);
        }
        prop_assert_eq!(atomic.snapshot(), record_all(&values));
    }

    /// Every recorded value lands in a bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(bucket_lower(i) <= v);
        prop_assert!(v <= bucket_upper(i));
    }

    /// Histogram quantiles stay within one bucket of the exact-sort
    /// oracle: the reported quantile is bracketed by the bounds of the
    /// bucket holding the exact nearest-rank answer.
    #[test]
    fn quantile_within_one_bucket_of_exact(
        values in proptest::collection::vec(
            (0u32..3, any::<u64>()).prop_map(|(scale, raw)| match scale {
                0 => raw % 16,
                1 => raw % 1_000_000,
                _ => raw % (1u64 << 40),
            }),
            1..200,
        ),
        q in 0.0f64..=1.0,
    ) {
        let snap = record_all(&values);
        let estimated = snap.quantile(q);

        // Exact nearest-rank oracle over the same samples, via the
        // analysis crate's percentile (it interpolates; round-trip it
        // through the same nearest-rank convention by feeding the
        // already-exact sample set and bracketing generously).
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let exact = paco_analysis::percentile(&as_f64, q * 100.0);

        // The exact answer falls between two adjacent order statistics;
        // each lies in some bucket. The estimate must lie within the
        // widened range [lower(bucket(floor)), upper(bucket(ceil))].
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let pos = q * (sorted.len() - 1) as f64;
        let lo_stat = sorted[pos.floor() as usize];
        let hi_stat = sorted[pos.ceil() as usize];
        let lo_bound = bucket_lower(bucket_index(lo_stat)) as f64;
        let hi_bound = bucket_upper(bucket_index(hi_stat)) as f64;
        prop_assert!(
            estimated >= lo_bound && estimated <= hi_bound,
            "quantile {} estimated {} outside [{}, {}] (exact {})",
            q, estimated, lo_bound, hi_bound, exact
        );
        // And the exact answer itself sits inside the same envelope.
        prop_assert!(exact >= lo_bound && exact <= hi_bound);
    }
}
