//! The flight recorder: a fixed-size ring of structured, timestamped
//! control-plane events.
//!
//! Connection opens and closes, frame decode errors, session
//! park/resume/restore and drift latches are *rare* relative to the
//! per-branch-event hot path, but they are exactly what an operator
//! needs when a server misbehaves. The recorder keeps the last
//! N of them in per-thread-stripe ring buffers (one short uncontended
//! mutex acquisition per event — never on the per-event prediction
//! path, which records nothing here) and renders them as readable text
//! on demand: on a protocol error, on panic (via
//! [`install_panic_hook`]), or over the exposition endpoint's
//! `/flight` path.
//!
//! Events are fixed-size binary records — a global sequence number, a
//! microsecond timestamp from the recorder's epoch, a [`FlightKind`],
//! and two argument words whose meaning the kind defines — so recording
//! never allocates and the ring's memory footprint is constant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{thread_stripe, STRIPES};

/// What happened. The two argument words (`a`, `b`) are
/// kind-specific; see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A TCP connection was accepted. `a` = connection id.
    ConnOpen = 1,
    /// A connection finished (any reason). `a` = connection id.
    ConnClose = 2,
    /// A frame failed to decode (protocol violation). `a` = connection
    /// id, `b` = session id (0 before handshake).
    FrameError = 3,
    /// A fresh session was established. `a` = session id.
    SessionFresh = 4,
    /// A session was parked for later resume. `a` = session id.
    SessionPark = 5,
    /// A parked session was reclaimed by id. `a` = session id.
    SessionResume = 6,
    /// A session was rebuilt from a client-held snapshot blob.
    /// `a` = the new session id.
    SessionRestore = 7,
    /// A session ended with a clean BYE. `a` = session id.
    SessionBye = 8,
    /// A session's drift detector latched. `a` = session id, `b` = the
    /// 1-based window index at which the flag latched.
    DriftLatch = 9,
    /// A session moved to another worker shard via the snapshot path.
    /// `a` = session id, `b` = packed shards (`from << 32 | to`).
    SessionMigrate = 10,
    /// A migration's snapshot restore failed and the session fell back
    /// to moving its live state directly. `a` = session id, `b` =
    /// packed shards (`from << 32 | to`).
    MigrateFail = 11,
}

impl FlightKind {
    /// Every kind, in code order — the doc-drift catalog iterates this.
    pub const ALL: [FlightKind; 11] = [
        FlightKind::ConnOpen,
        FlightKind::ConnClose,
        FlightKind::FrameError,
        FlightKind::SessionFresh,
        FlightKind::SessionPark,
        FlightKind::SessionResume,
        FlightKind::SessionRestore,
        FlightKind::SessionBye,
        FlightKind::DriftLatch,
        FlightKind::SessionMigrate,
        FlightKind::MigrateFail,
    ];

    /// The kind's stable kebab-case name (used in dumps and docs).
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::ConnOpen => "conn-open",
            FlightKind::ConnClose => "conn-close",
            FlightKind::FrameError => "frame-error",
            FlightKind::SessionFresh => "session-fresh",
            FlightKind::SessionPark => "session-park",
            FlightKind::SessionResume => "session-resume",
            FlightKind::SessionRestore => "session-restore",
            FlightKind::SessionBye => "session-bye",
            FlightKind::DriftLatch => "drift-latch",
            FlightKind::SessionMigrate => "session-migrate",
            FlightKind::MigrateFail => "migrate-fail",
        }
    }

    /// Renders the argument words with kind-appropriate names.
    fn describe(self, a: u64, b: u64) -> String {
        match self {
            FlightKind::ConnOpen | FlightKind::ConnClose => format!("conn={a}"),
            FlightKind::FrameError => format!("conn={a} session={b}"),
            FlightKind::SessionFresh
            | FlightKind::SessionPark
            | FlightKind::SessionResume
            | FlightKind::SessionRestore
            | FlightKind::SessionBye => format!("session={a}"),
            FlightKind::DriftLatch => format!("session={a} window={b}"),
            FlightKind::SessionMigrate | FlightKind::MigrateFail => {
                format!("session={a} shard={}->{}", b >> 32, b & 0xffff_ffff)
            }
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global ordering stamp (monotonic across threads).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub micros: u64,
    /// What happened.
    pub kind: FlightKind,
    /// First argument word (see [`FlightKind`]).
    pub a: u64,
    /// Second argument word (see [`FlightKind`]).
    pub b: u64,
}

#[derive(Debug)]
struct Ring {
    /// Pre-allocated storage; once full, the oldest slot is overwritten.
    slots: Vec<FlightEvent>,
    capacity: usize,
    /// Next write position (wraps).
    next: usize,
}

impl Ring {
    fn push(&mut self, event: FlightEvent) {
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.next] = event;
        }
        self.next = (self.next + 1) % self.capacity;
    }
}

/// The recorder: [`STRIPES`] rings, one per thread stripe, each holding
/// the stripe's most recent events.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    seq: AtomicU64,
    recorded: AtomicU64,
    /// Lifetime counts per kind, indexed by `FlightKind as u8`. The
    /// rings retain only the recent tail; these survive overwrites, so
    /// event counts can be reconciled against metric counters exactly
    /// even after millions of events.
    recorded_by_kind: [AtomicU64; FlightRecorder::KIND_SLOTS],
    rings: Vec<Mutex<Ring>>,
}

impl FlightRecorder {
    /// Events each stripe ring retains by default (total capacity is
    /// `STRIPES` times this).
    pub const DEFAULT_RING_CAPACITY: usize = 512;

    /// Per-kind counter slots (covers every `FlightKind` repr value).
    const KIND_SLOTS: usize = 12;

    /// A recorder with the default per-ring capacity.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(Self::DEFAULT_RING_CAPACITY)
    }

    /// A recorder retaining `per_ring` events per stripe (at least 1).
    pub fn with_capacity(per_ring: usize) -> Self {
        let capacity = per_ring.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            recorded_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            rings: (0..STRIPES)
                .map(|_| {
                    Mutex::new(Ring {
                        slots: Vec::with_capacity(capacity),
                        capacity,
                        next: 0,
                    })
                })
                .collect(),
        }
    }

    /// Records one event into the calling thread's stripe ring.
    pub fn record(&self, kind: FlightKind, a: u64, b: u64) {
        let event = FlightEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            micros: self.epoch.elapsed().as_micros() as u64,
            kind,
            a,
            b,
        };
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.recorded_by_kind[kind as usize].fetch_add(1, Ordering::Relaxed);
        let mut ring = self.rings[thread_stripe()]
            .lock()
            .expect("flight ring poisoned");
        ring.push(event);
    }

    /// Events recorded over the recorder's lifetime (retained or not).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Lifetime count of events of one kind (retained or not) — the
    /// reconciliation surface scale tests compare against metric
    /// counters, since rings overwrite their oldest events.
    pub fn recorded_of(&self, kind: FlightKind) -> u64 {
        self.recorded_by_kind[kind as usize].load(Ordering::Relaxed)
    }

    /// The retained events, oldest first (merged across rings, ordered
    /// by sequence number).
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut all: Vec<FlightEvent> = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().expect("flight ring poisoned").slots.iter());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Renders the retained events as readable text, one line per event:
    ///
    /// ```text
    /// flight recorder: 3 events retained (3 recorded)
    ///   +0.000102s #0 conn-open        conn=1
    ///   +0.004711s #1 session-fresh    session=1
    ///   +0.009815s #2 frame-error      conn=1 session=1
    /// ```
    pub fn render(&self) -> String {
        let events = self.events();
        let mut out = format!(
            "flight recorder: {} events retained ({} recorded)\n",
            events.len(),
            self.recorded()
        );
        for e in events {
            out.push_str(&format!(
                "  +{:.6}s #{} {:<16} {}\n",
                e.micros as f64 / 1e6,
                e.seq,
                e.kind.name(),
                e.kind.describe(e.a, e.b)
            ));
        }
        out
    }

    /// Dumps [`render`](Self::render) to stderr under a banner naming
    /// `reason` — the protocol-error / operator-request dump path.
    pub fn dump(&self, reason: &str) {
        eprintln!("=== flight recorder dump ({reason}) ===\n{}", self.render());
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

/// Installs a panic hook that dumps `recorder` to stderr before
/// delegating to the previously installed hook. Call once at server
/// startup; calling again chains another dump.
pub fn install_panic_hook(recorder: std::sync::Arc<FlightRecorder>) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        recorder.dump("panic");
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_in_order() {
        let rec = FlightRecorder::with_capacity(16);
        rec.record(FlightKind::ConnOpen, 1, 0);
        rec.record(FlightKind::SessionFresh, 9, 0);
        rec.record(FlightKind::DriftLatch, 9, 16);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, FlightKind::ConnOpen);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        let text = rec.render();
        assert!(text.contains("conn-open"));
        assert!(text.contains("session=9 window=16"));
        assert!(text.starts_with("flight recorder: 3 events retained (3 recorded)"));
    }

    #[test]
    fn ring_overwrites_oldest_at_capacity() {
        let rec = FlightRecorder::with_capacity(4);
        // Single-threaded: everything lands in one ring.
        for i in 0..10 {
            rec.record(FlightKind::ConnOpen, i, 0);
        }
        let events = rec.events();
        assert_eq!(events.len(), 4, "ring must stay fixed-size");
        assert_eq!(rec.recorded(), 10);
        // The newest four survive.
        let ids: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn cross_thread_events_merge_by_sequence() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = std::sync::Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..8 {
                        rec.record(FlightKind::SessionPark, t * 100 + i, 0);
                    }
                });
            }
        });
        let events = rec.events();
        assert_eq!(events.len(), 32);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn per_kind_counts_survive_ring_overwrites() {
        let rec = FlightRecorder::with_capacity(2);
        for i in 0..9 {
            rec.record(FlightKind::SessionPark, i, 0);
        }
        rec.record(FlightKind::SessionMigrate, 9, 3 << 32 | 5);
        assert_eq!(rec.recorded_of(FlightKind::SessionPark), 9);
        assert_eq!(rec.recorded_of(FlightKind::SessionMigrate), 1);
        assert_eq!(rec.recorded_of(FlightKind::MigrateFail), 0);
        let text = rec.render();
        assert!(text.contains("session=9 shard=3->5"));
    }

    #[test]
    fn every_kind_has_a_distinct_name() {
        let mut names: Vec<&str> = FlightKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FlightKind::ALL.len());
    }
}
