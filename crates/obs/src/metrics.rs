//! Counters and gauges: the scalar metric primitives.
//!
//! [`Counter`] is the hot-path workhorse: monotonic, updated with one
//! relaxed atomic add into a per-thread stripe (threads are assigned
//! stripes round-robin on first touch, so unrelated threads do not
//! bounce the same cache line). Reading sums the stripes — reads are
//! rare (scrapes, log lines), writes are constant.
//!
//! [`Gauge`] is a single `f64` cell (set / add) for values that go both
//! ways: session-table occupancy, the smoothed fleet event rate. Gauges
//! are updated at control-plane cadence, not per event, so they are not
//! striped.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Stripes per counter. Power of two; more stripes buy less write
/// contention at the cost of read-side summing and memory.
pub const STRIPES: usize = 8;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe, assigned round-robin on first use.
    static THREAD_STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// The calling thread's stripe index.
#[inline]
pub(crate) fn thread_stripe() -> usize {
    THREAD_STRIPE.with(|s| *s)
}

/// One cache line per stripe, so two threads on different stripes never
/// write the same line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A monotonic counter. `inc`/`add` is a thread-local stripe lookup plus
/// one relaxed `fetch_add` — no locks, no allocation.
#[derive(Debug, Default)]
pub struct Counter {
    cells: [PaddedCell; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_stripe()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The current total (sum over stripes).
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A floating-point gauge: last-set value, plus add/sub for occupancy
/// tracking. Stored as `f64` bits in one atomic cell; `add` is a small
/// CAS loop (gauges update at connection cadence, never per event).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge reading 0.
    pub fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// The current reading.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let counter = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8000);
    }

    #[test]
    fn counter_add_accumulates() {
        let c = Counter::new();
        c.add(5);
        c.add(7);
        c.inc();
        assert_eq!(c.value(), 13);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0.0);
        g.set(4.5);
        assert_eq!(g.value(), 4.5);
        g.add(1.0);
        g.sub(2.0);
        assert!((g.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn gauge_concurrent_adds_balance() {
        let g = Arc::new(Gauge::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let g = Arc::clone(&g);
                scope.spawn(move || {
                    for _ in 0..500 {
                        g.add(1.0);
                        g.sub(1.0);
                    }
                });
            }
        });
        assert_eq!(g.value(), 0.0);
    }
}
