//! Log-linear power-of-two-bucket histograms.
//!
//! The bucket layout is shared by every histogram in the workspace —
//! server-side batch timings, `paco-load` round-trip latencies and the
//! `hotpath` bench's per-pass probe all record into the same scheme, so
//! their snapshots merge and their quantiles mean the same thing.
//!
//! Values are non-negative integers (typically nanoseconds or event
//! counts). The first [`SUB_COUNT`] values get exact unit buckets; above
//! that, each power-of-two octave is split into [`SUB_COUNT`] linear
//! sub-buckets, so the relative width of any bucket is at most
//! `1 / SUB_COUNT` (12.5%) of its value. Computing a bucket index is a
//! leading-zeros instruction plus two shifts — no loops, no floats, no
//! allocation — which is what lets the atomic [`Histogram`] sit on the
//! serving hot path.
//!
//! [`HistogramSnapshot`] is the plain (non-atomic) form: it records,
//! merges (bucket-wise addition — associative and commutative, pinned by
//! proptests), and answers quantile queries. The atomic [`Histogram`] is
//! the concurrent recorder; [`Histogram::snapshot`] lowers it into a
//! snapshot for reading.

use std::sync::atomic::{AtomicU64, Ordering};

/// Log2 of the number of linear sub-buckets per power-of-two octave.
pub const SUB_BITS: u32 = 3;

/// Linear sub-buckets per octave (and the number of exact unit buckets
/// at the bottom of the range).
pub const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket count: [`SUB_COUNT`] unit buckets for values below
/// [`SUB_COUNT`], then [`SUB_COUNT`] sub-buckets for each of the
/// `64 - SUB_BITS` remaining octaves of the `u64` range.
pub const BUCKET_COUNT: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// The bucket index of `value`: identity below [`SUB_COUNT`], otherwise
/// octave-base plus the top [`SUB_BITS`] bits below the leading one.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= SUB_BITS
    let sub = ((value >> (msb - SUB_BITS as usize)) & (SUB_COUNT as u64 - 1)) as usize;
    SUB_COUNT + ((msb - SUB_BITS as usize) << SUB_BITS) + sub
}

/// The smallest value that lands in bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    if index < SUB_COUNT {
        return index as u64;
    }
    let octave = (index - SUB_COUNT) >> SUB_BITS;
    let sub = ((index - SUB_COUNT) & (SUB_COUNT - 1)) as u64;
    (SUB_COUNT as u64 + sub) << octave
}

/// The largest value that lands in bucket `index`.
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 < BUCKET_COUNT {
        bucket_lower(index + 1) - 1
    } else {
        u64::MAX
    }
}

/// A plain, mergeable histogram: fixed bucket array plus exact sum and
/// max. Doubles as the single-threaded recorder (`paco-load` sessions,
/// the bench probe) and as the read-side snapshot of the atomic
/// [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Box<[u64]>,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn new() -> Self {
        HistogramSnapshot {
            buckets: vec![0u64; BUCKET_COUNT].into_boxed_slice(),
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        // Wrapping, to match the atomic recorder's `fetch_add` exactly
        // (latency sums in nanoseconds wrap after ~584 years of
        // recorded time; bucket counts carry the real distribution).
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded values (wrapping, like the atomic recorder).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum as f64 / count as f64
    }

    /// The per-bucket occupancy counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Accumulates `other` into `self` — bucket-wise addition, exact-sum
    /// addition, max of maxes. Associative and commutative (the proptest
    /// suite pins both), so per-thread recorders pool in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) under the nearest-rank
    /// definition, with linear interpolation inside the chosen bucket.
    /// The result always lies within the bucket holding the exact
    /// order statistic, so the error against an exact-sort percentile is
    /// bounded by one bucket width (≤ `1/SUB_COUNT` relative). Returns
    /// 0.0 when empty; `q = 1.0` returns the exact recorded max.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max as f64;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let lower = bucket_lower(i);
                // The top bucket's nominal upper bound is u64::MAX;
                // clamp interpolation to the recorded max so quantiles
                // never exceed an observed value.
                let upper = bucket_upper(i).min(self.max);
                let into = (rank - cum) as f64 / n as f64;
                return lower as f64 + (upper.saturating_sub(lower)) as f64 * into;
            }
            cum += n;
        }
        self.max as f64
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::new()
    }
}

/// The concurrent recorder: one relaxed atomic add into a bucket, one
/// into the sum, one `fetch_max` — no locks, no allocation, wait-free on
/// every architecture that has fetch-and-add. Threads share the bucket
/// array; under write contention the adds still make progress (they are
/// single RMW instructions), and reads ([`snapshot`](Self::snapshot))
/// see a merge-consistent view (counts may trail sums by in-flight
/// records, which is harmless for monotonic telemetry).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Hot-path safe: two shifts, a leading-zeros,
    /// and three relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Recorded values (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Lowers the atomic state into a plain [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Box<[u64]> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let mut snap = HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        };
        // A snapshot races concurrent records; clamp max so the
        // invariant max >= any bucket's lower bound with occupancy
        // holds even mid-record.
        if snap.count() == 0 {
            snap.max = 0;
            snap.sum = 0;
        }
        snap
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..SUB_COUNT as u64 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_upper(i), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [
            0,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(
                bucket_lower(i) <= v && v <= bucket_upper(i),
                "value {v} outside bucket {i}: [{}, {}]",
                bucket_lower(i),
                bucket_upper(i)
            );
        }
    }

    #[test]
    fn buckets_tile_the_range_contiguously() {
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(
                bucket_upper(i) + 1,
                bucket_lower(i + 1),
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        // Above the unit range, a bucket spans at most lower/SUB_COUNT.
        for i in SUB_COUNT..BUCKET_COUNT - 1 {
            let lower = bucket_lower(i);
            let width = bucket_upper(i) - lower + 1;
            assert!(
                width <= lower / SUB_COUNT as u64 + 1,
                "bucket {i} too wide: [{lower}, {}]",
                bucket_upper(i)
            );
        }
    }

    #[test]
    fn snapshot_records_and_summarizes() {
        let mut h = HistogramSnapshot::new();
        for v in [3, 3, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1116);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 223.2).abs() < 1e-9);
        assert!(!h.is_empty());
        // Unit-bucket values come back exactly.
        assert_eq!(h.quantile(0.2), 3.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn atomic_and_plain_recorders_agree() {
        let atomic = Histogram::new();
        let mut plain = HistogramSnapshot::new();
        for v in 0..10_000u64 {
            let x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            atomic.record(x);
            plain.record(x);
        }
        assert_eq!(atomic.snapshot(), plain);
        assert_eq!(atomic.count(), plain.count());
    }

    #[test]
    fn empty_quantiles_are_zero() {
        let h = HistogramSnapshot::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_pools_counts() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        for v in [1, 2, 3] {
            a.record(v);
        }
        for v in [100, 200] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), 306);
        assert_eq!(merged.max(), 200);
    }
}
