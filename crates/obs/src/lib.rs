//! `paco-obs`: a zero-allocation metrics plane and structured flight
//! recorder for the PaCo serving stack, with a scrapeable Prometheus
//! text exposition endpoint.
//!
//! The design splits observability into two planes that share one
//! constraint — *nothing on the per-event hot path may lock or
//! allocate*:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) are registered
//!   once at startup in a [`Registry`] and recorded through shared
//!   handles. A counter increment is a thread-local stripe lookup plus
//!   one relaxed atomic add; a histogram record is a couple of shifts
//!   (power-of-two log-linear bucketing) plus relaxed adds. Reads
//!   (scrapes, log lines) sum stripes and snapshot buckets — rare and
//!   off-path. [`Registry::render`] emits Prometheus text format 0.0.4.
//! * **The flight recorder** ([`FlightRecorder`]) keeps the last N
//!   *control-plane* events — connection open/close, frame decode
//!   errors, session park/resume/restore, drift latches — in fixed-size
//!   per-stripe ring buffers of binary [`FlightEvent`]s, dumped as
//!   readable text on protocol error, panic
//!   ([`install_panic_hook`]) or operator request.
//!
//! [`MetricsServer`] binds a sidecar TCP listener serving `GET
//! /metrics` (the registry) and `GET /flight` (the recorder) so
//! operators can scrape a live server without touching the protocol
//! port.
//!
//! [`HistogramSnapshot`] doubles as a single-threaded recorder: load
//! generators and benches record into a plain snapshot (no atomics) and
//! merge per-session snapshots afterwards — merge is exact
//! (bucket-wise addition), so sharded recording loses nothing.

#![deny(missing_docs)]

mod expose;
mod flight;
mod hist;
mod metrics;
mod registry;

pub use expose::MetricsServer;
pub use flight::{install_panic_hook, FlightEvent, FlightKind, FlightRecorder};
pub use hist::{
    bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot, BUCKET_COUNT, SUB_BITS,
    SUB_COUNT,
};
pub use metrics::{Counter, Gauge, STRIPES};
pub use registry::{FamilyInfo, MetricKind, Registry};
