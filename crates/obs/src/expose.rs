//! The scrapeable exposition endpoint: a minimal HTTP/1.1 sidecar
//! listener built on `std::net` alone.
//!
//! Two paths:
//!
//! * `GET /metrics` — the registry rendered in the Prometheus text
//!   exposition format (version 0.0.4).
//! * `GET /flight` — the flight recorder rendered as readable text
//!   (the operator-request dump path).
//!
//! The listener runs on its own thread, fully off the serving hot path:
//! a scrape costs one registry render, which reads relaxed atomics and
//! never blocks a recording thread. Shutdown mirrors the main server's
//! pattern — set a flag, then self-connect to unblock `accept`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::flight::FlightRecorder;
use crate::registry::Registry;

/// A running exposition endpoint. Dropping it stops the listener.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and serves `registry` (and `recorder`, on
    /// `/flight`) until [`stop`](Self::stop) or drop.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        recorder: Arc<FlightRecorder>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Scrapes are cheap and rare; handle them inline so
                    // the endpoint stays single-threaded and bounded.
                    let _ = handle_scrape(stream, &registry, &recorder);
                }
            })
        };
        Ok(MetricsServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn stop(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one request line, routes it, writes one response, closes.
fn handle_scrape(
    mut stream: TcpStream,
    registry: &Registry,
    recorder: &FlightRecorder,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head (or a bounded amount).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => ("200 OK", registry.render()),
            "/flight" => ("200 OK", recorder.render()),
            _ => ("404 Not Found", "try /metrics or /flight\n".to_string()),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightKind;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("split head/body");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_flight_then_stops() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("test_scrapes_total", "Scrapes.", vec![]);
        counter.add(11);
        let recorder = Arc::new(FlightRecorder::with_capacity(8));
        recorder.record(FlightKind::ConnOpen, 42, 0);

        let mut server =
            MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry), Arc::clone(&recorder))
                .expect("bind");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("version=0.0.4"));
        assert!(body.contains("test_scrapes_total 11\n"));

        let (head, body) = get(addr, "/flight");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("conn-open"));
        assert!(body.contains("conn=42"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly after close on some platforms;
                // a second stop must stay a no-op either way.
                server.stop();
                true
            }
        );
    }

    #[test]
    fn non_get_is_rejected() {
        let registry = Arc::new(Registry::new());
        let recorder = Arc::new(FlightRecorder::with_capacity(8));
        let server = MetricsServer::bind("127.0.0.1:0", registry, recorder).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"));
    }
}
