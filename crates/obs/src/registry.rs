//! The metric registry and Prometheus-style text exposition.
//!
//! A [`Registry`] maps metric *descriptors* (name, help, label pairs)
//! to shared handles ([`Counter`], [`Gauge`], [`Histogram`]). Hot paths
//! hold the `Arc` handles directly — registration happens once at
//! startup and the registry lock is touched only by registration and
//! scrapes, never by a record.
//!
//! [`Registry::render`] produces the Prometheus text exposition format
//! (version 0.0.4): `# HELP` / `# TYPE` headers per family, one sample
//! line per labeled series, and for histograms the cumulative
//! `_bucket{le=...}` / `_sum` / `_count` triplet (empty buckets are
//! elided; `le` values are the buckets' inclusive upper bounds).

use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};

/// What a registered metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Set/add gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
}

impl MetricKind {
    /// The exposition `# TYPE` keyword.
    pub fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registered series: descriptor plus the live handle.
#[derive(Debug)]
struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    handle: Handle,
}

#[derive(Debug)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A metric family as seen by documentation and doc-drift tests: the
/// name, kind, help string and label keys shared by its series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyInfo {
    /// The family name (e.g. `paco_frames_total`).
    pub name: &'static str,
    /// The metric kind.
    pub kind: MetricKind,
    /// The family's help string.
    pub help: &'static str,
    /// Label keys every series of the family carries (may be empty).
    pub label_keys: Vec<&'static str>,
}

/// The registry: a startup-time list of metric series.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        handle: Handle,
    ) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let mut entries = self.entries.lock().expect("registry poisoned");
        for existing in entries.iter().filter(|e| e.name == name) {
            assert_eq!(
                existing.handle.kind(),
                handle.kind(),
                "metric family `{name}` registered with two kinds"
            );
            assert!(
                existing.labels != labels,
                "metric series `{name}` {labels:?} registered twice"
            );
        }
        entries.push(Entry {
            name,
            help,
            labels,
            handle,
        });
    }

    /// Registers a counter series and returns its handle.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Counter> {
        let counter = Arc::new(Counter::new());
        self.register(name, help, labels, Handle::Counter(Arc::clone(&counter)));
        counter
    }

    /// Registers a gauge series and returns its handle.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Gauge> {
        let gauge = Arc::new(Gauge::new());
        self.register(name, help, labels, Handle::Gauge(Arc::clone(&gauge)));
        gauge
    }

    /// Registers a histogram series and returns its handle.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Histogram> {
        let hist = Arc::new(Histogram::new());
        self.register(name, help, labels, Handle::Histogram(Arc::clone(&hist)));
        hist
    }

    /// The registered families (deduplicated by name, registration
    /// order) — what `docs/OBSERVABILITY.md`'s catalog is pinned to.
    pub fn families(&self) -> Vec<FamilyInfo> {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut families: Vec<FamilyInfo> = Vec::new();
        for entry in entries.iter() {
            if families.iter().any(|f| f.name == entry.name) {
                continue;
            }
            families.push(FamilyInfo {
                name: entry.name,
                kind: entry.handle.kind(),
                help: entry.help,
                label_keys: entry.labels.iter().map(|(k, _)| *k).collect(),
            });
        }
        families
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format. Families render contiguously in first-registration
    /// order.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for entry in entries.iter() {
            if seen.contains(&entry.name) {
                continue;
            }
            seen.push(entry.name);
            out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                entry.name,
                entry.handle.kind().type_name()
            ));
            for series in entries.iter().filter(|e| e.name == entry.name) {
                render_series(&mut out, series);
            }
        }
        out
    }
}

fn label_block(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a gauge value: integral readings print without a fraction so
/// occupancy gauges scrape as plain integers.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_series(out: &mut String, entry: &Entry) {
    match &entry.handle {
        Handle::Counter(c) => {
            out.push_str(&format!(
                "{}{} {}\n",
                entry.name,
                label_block(&entry.labels, None),
                c.value()
            ));
        }
        Handle::Gauge(g) => {
            out.push_str(&format!(
                "{}{} {}\n",
                entry.name,
                label_block(&entry.labels, None),
                format_f64(g.value())
            ));
        }
        Handle::Histogram(h) => {
            let snap = h.snapshot();
            let mut cum = 0u64;
            for (i, &n) in snap.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let upper = crate::hist::bucket_upper(i);
                // The top bucket's bound is +Inf; the explicit +Inf
                // line below carries it.
                if upper == u64::MAX {
                    continue;
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    entry.name,
                    label_block(&entry.labels, Some(("le", &upper.to_string()))),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                entry.name,
                label_block(&entry.labels, Some(("le", "+Inf"))),
                snap.count()
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                entry.name,
                label_block(&entry.labels, None),
                snap.sum()
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                entry.name,
                label_block(&entry.labels, None),
                snap.count()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let registry = Registry::new();
        let a = registry.counter(
            "test_frames_total",
            "Frames.",
            vec![("opcode", "EVENTS".into())],
        );
        let b = registry.counter(
            "test_frames_total",
            "Frames.",
            vec![("opcode", "BYE".into())],
        );
        let g = registry.gauge("test_occupancy", "Occupancy.", vec![]);
        let h = registry.histogram("test_latency_ns", "Latency.", vec![]);
        a.add(3);
        b.inc();
        g.set(7.0);
        h.record(5);
        h.record(100);

        let text = registry.render();
        assert!(text.contains("# HELP test_frames_total Frames.\n"));
        assert!(text.contains("# TYPE test_frames_total counter\n"));
        assert!(text.contains("test_frames_total{opcode=\"EVENTS\"} 3\n"));
        assert!(text.contains("test_frames_total{opcode=\"BYE\"} 1\n"));
        assert!(text.contains("# TYPE test_occupancy gauge\n"));
        assert!(text.contains("test_occupancy 7\n"));
        assert!(text.contains("# TYPE test_latency_ns histogram\n"));
        assert!(text.contains("test_latency_ns_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("test_latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("test_latency_ns_sum 105\n"));
        assert!(text.contains("test_latency_ns_count 2\n"));
        // One header block per family, even with two series.
        assert_eq!(text.matches("# TYPE test_frames_total").count(), 1);
    }

    #[test]
    fn families_deduplicate_and_keep_label_keys() {
        let registry = Registry::new();
        registry.counter("test_a_total", "A.", vec![("k", "1".into())]);
        registry.counter("test_a_total", "A.", vec![("k", "2".into())]);
        registry.gauge("test_b", "B.", vec![]);
        let families = registry.families();
        assert_eq!(families.len(), 2);
        assert_eq!(families[0].name, "test_a_total");
        assert_eq!(families[0].kind, MetricKind::Counter);
        assert_eq!(families[0].label_keys, vec!["k"]);
        assert_eq!(families[1].name, "test_b");
        assert_eq!(families[1].kind, MetricKind::Gauge);
        assert!(families[1].label_keys.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_series_panics() {
        let registry = Registry::new();
        registry.counter("test_dup_total", "Dup.", vec![]);
        registry.counter("test_dup_total", "Dup.", vec![]);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_conflict_panics() {
        let registry = Registry::new();
        registry.counter("test_kind", "K.", vec![("a", "1".into())]);
        registry.gauge("test_kind", "K.", vec![("a", "2".into())]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("Bad-Name", "X.", vec![]);
    }
}
