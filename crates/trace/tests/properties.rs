//! Property and adversarial tests for the trace format: encode→decode is
//! the identity over arbitrary well-formed instruction streams, and
//! malformed files fail loudly with the right error.

use std::io::Cursor;

use paco_trace::{
    workload_from_bytes, TraceError, TraceMeta, TraceReader, TraceRecord, TraceWriter,
    CHUNK_RECORDS, FORMAT_VERSION, MAGIC,
};
use paco_types::{ControlKind, DynInstr, InstrClass, MemAccess, Pc};
use paco_workloads::{DataParams, WrongPathParams};
use proptest::prelude::*;

fn test_meta() -> TraceMeta {
    TraceMeta {
        name: "proptest".into(),
        params: WrongPathParams {
            code_base: 0x40_0000,
            code_bytes: 1 << 16,
            data: DataParams::friendly(),
        },
    }
}

fn encode(records: &[TraceRecord]) -> Vec<u8> {
    let mut writer = TraceWriter::new(Cursor::new(Vec::new()), &test_meta()).unwrap();
    for r in records {
        writer.push(r).unwrap();
    }
    let (summary, cursor) = writer.finish().unwrap();
    assert_eq!(summary.records, records.len() as u64);
    cursor.into_inner()
}

fn decode(bytes: Vec<u8>) -> Result<Vec<TraceRecord>, TraceError> {
    let mut reader = TraceReader::new(Cursor::new(bytes))?;
    reader.records().collect()
}

/// An arbitrary well-formed record: control flow carries a target,
/// memory operations carry an address, everything else carries neither.
fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    let pc = any::<u64>();
    let dep = 0u64..40;
    prop_oneof![
        // Plain ALU-side instructions.
        (pc, 0u8..5, dep.clone(), 0u64..40).prop_map(|(pc, kind, d0, d1)| {
            let class = match kind {
                0 => InstrClass::Alu,
                1 => InstrClass::MulDiv,
                _ => InstrClass::Nop,
            };
            TraceRecord {
                pc,
                class,
                deps: [d0 as u32, d1 as u32],
                mem_addr: None,
                taken: false,
                target: 0,
            }
        }),
        // Memory operations.
        (pc, any::<bool>(), any::<u64>(), dep).prop_map(|(pc, load, addr, d0)| TraceRecord {
            pc,
            class: if load {
                InstrClass::Load
            } else {
                InstrClass::Store
            },
            deps: [d0 as u32, 0],
            mem_addr: Some(addr),
            taken: false,
            target: 0,
        }),
        // Control flow of every kind.
        (pc, 0u8..5, any::<bool>(), any::<u64>()).prop_map(|(pc, kind, taken, target)| {
            let kind = match kind {
                0 => ControlKind::Conditional,
                1 => ControlKind::Jump,
                2 => ControlKind::Call,
                3 => ControlKind::Indirect,
                _ => ControlKind::Return,
            };
            TraceRecord {
                pc,
                class: InstrClass::Control(kind),
                deps: [0, 0],
                mem_addr: None,
                // Non-conditional control is architecturally always taken.
                taken: taken || kind != ControlKind::Conditional,
                target,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode == identity, for streams spanning chunk
    /// boundaries and arbitrary record shapes.
    #[test]
    fn round_trip_is_identity(
        records in proptest::collection::vec(record_strategy(), 0..2000),
    ) {
        let decoded = decode(encode(&records)).unwrap();
        prop_assert_eq!(decoded, records);
    }

    /// Flipping any single payload byte is caught by the chunk checksum
    /// before any record from that chunk is surfaced.
    #[test]
    fn corrupted_payload_is_detected(
        records in proptest::collection::vec(record_strategy(), 1..300),
        victim in any::<u64>(),
        bit in 0u32..8,
    ) {
        let clean = encode(&records);
        let header_len = 72 + "proptest".len();
        // Payload starts after the header and the 12-byte chunk frame.
        let lo = header_len + 12;
        let mut bytes = clean.clone();
        let idx = lo + (victim as usize % (bytes.len() - lo));
        bytes[idx] ^= 1 << bit;
        let result = decode(bytes);
        prop_assert!(
            matches!(result, Err(TraceError::CorruptChunk { .. })),
            "flipping byte {idx} must be caught, got {result:?}"
        );
    }

    /// Cutting the file anywhere strictly inside the chunked region
    /// fails with Truncated or CorruptChunk — never a silent short read.
    #[test]
    fn truncation_is_detected(
        records in proptest::collection::vec(record_strategy(), 1..300),
        cut_seed in any::<u64>(),
    ) {
        let clean = encode(&records);
        let header_len = 72 + "proptest".len();
        let cut = header_len + (cut_seed as usize % (clean.len() - header_len - 1));
        let result = decode(clean[..cut].to_vec());
        prop_assert!(
            matches!(
                result,
                Err(TraceError::Truncated { .. } | TraceError::CorruptChunk { .. })
            ),
            "cut at {cut} of {} must fail, got {result:?}",
            clean.len()
        );
    }
}

#[test]
fn multi_chunk_traces_round_trip() {
    // Deterministic cover for the chunk-boundary path (delta state must
    // reset): three full chunks plus a partial one.
    let n = CHUNK_RECORDS as u64 * 3 + 17;
    let records: Vec<TraceRecord> = (0..n)
        .map(|i| {
            TraceRecord::from(&DynInstr {
                pc: Pc::new(0x40_0000 + i * 4),
                class: InstrClass::Load,
                deps: [1, 0],
                mem: Some(MemAccess {
                    addr: 0x1000_0000 + (i % 512) * 8,
                }),
                taken: false,
                target: Pc::default(),
            })
        })
        .collect();
    let bytes = encode(&records);
    let mut reader = TraceReader::new(Cursor::new(bytes)).unwrap();
    assert_eq!(reader.declared_records(), Some(n));
    let decoded: Vec<TraceRecord> = reader.records().map(Result::unwrap).collect();
    assert_eq!(decoded, records);
}

#[test]
fn rewind_replays_identically() {
    let records: Vec<TraceRecord> = (0..5000u64)
        .map(|i| TraceRecord::from(&DynInstr::alu(Pc::new(0x1000 + i * 4))))
        .collect();
    let mut reader = TraceReader::new(Cursor::new(encode(&records))).unwrap();
    let first: Vec<_> = reader.records().map(Result::unwrap).collect();
    reader.rewind().unwrap();
    let second: Vec<_> = reader.records().map(Result::unwrap).collect();
    assert_eq!(first, second);
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = encode(&[TraceRecord::from(&DynInstr::alu(Pc::new(0)))]);
    bytes[0] = b'X';
    assert!(matches!(decode(bytes), Err(TraceError::BadMagic)));
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = encode(&[TraceRecord::from(&DynInstr::alu(Pc::new(0)))]);
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        decode(bytes),
        Err(TraceError::UnsupportedVersion(v)) if v == FORMAT_VERSION + 1
    ));
}

#[test]
fn short_header_is_rejected() {
    assert!(matches!(
        decode(MAGIC.to_vec()),
        Err(TraceError::BadHeader(_))
    ));
}

#[test]
fn missing_trailing_chunk_is_detected_via_declared_count() {
    // Cut the file exactly at a chunk boundary: framing parses cleanly,
    // so only the header's declared count can reveal the loss.
    let n = CHUNK_RECORDS as u64 + 100;
    let records: Vec<TraceRecord> = (0..n)
        .map(|i| TraceRecord::from(&DynInstr::alu(Pc::new(i * 4))))
        .collect();
    let bytes = encode(&records);
    let header_len = 72 + "proptest".len();
    // Walk the chunk framing to find the end of the first chunk.
    let payload_len = u32::from_le_bytes(bytes[header_len + 4..header_len + 8].try_into().unwrap());
    let first_chunk_end = header_len + 12 + payload_len as usize;
    let result = decode(bytes[..first_chunk_end].to_vec());
    assert!(
        matches!(result, Err(TraceError::Truncated { .. })),
        "dropping the trailing chunk must be caught, got {result:?}"
    );
}

#[test]
fn empty_trace_cannot_back_a_workload() {
    let bytes = encode(&[]);
    assert!(matches!(workload_from_bytes(bytes), Err(TraceError::Empty)));
}
