//! Buffered, chunked trace writing, plus the machine-attachable recorder.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use paco_sim::TraceSink;
use paco_types::DynInstr;

use crate::error::TraceError;
use crate::format::{crc32, TraceMeta, CHUNK_RECORDS, COUNT_UNKNOWN, MAX_NAME_LEN};
use crate::record::{encode_record, DeltaState, TraceRecord};

/// Totals reported when a trace is finalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Records written.
    pub records: u64,
    /// Chunks written.
    pub chunks: u64,
    /// Payload bytes written (excluding header and chunk framing).
    pub payload_bytes: u64,
}

/// Writes a trace: header up front, then checksummed chunks of
/// delta-encoded records.
///
/// Records accumulate in an in-memory chunk buffer and are flushed every
/// [`CHUNK_RECORDS`] records, so memory use is bounded regardless of
/// trace length. [`finish`](Self::finish) must be called to flush the
/// final partial chunk and patch the header's record count.
///
/// # Examples
///
/// ```
/// use std::io::Cursor;
/// use paco_trace::{TraceMeta, TraceReader, TraceWriter};
/// use paco_types::{DynInstr, Pc};
/// use paco_workloads::{BenchmarkId, Workload};
///
/// let mut workload = BenchmarkId::Gzip.build(1);
/// let meta = TraceMeta::for_workload(&workload);
/// let mut writer = TraceWriter::new(Cursor::new(Vec::new()), &meta).unwrap();
/// for _ in 0..100 {
///     writer.push_instr(&workload.next_instr()).unwrap();
/// }
/// let (summary, cursor) = writer.finish().unwrap();
/// assert_eq!(summary.records, 100);
///
/// let mut reader = TraceReader::new(Cursor::new(cursor.into_inner())).unwrap();
/// assert_eq!(reader.records().map(Result::unwrap).count(), 100);
/// ```
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    chunk: Vec<u8>,
    chunk_records: u32,
    delta: DeltaState,
    records: u64,
    chunks: u64,
    payload_bytes: u64,
}

impl<W: Write + Seek> std::fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("records", &self.records)
            .field("chunks", &self.chunks)
            .finish_non_exhaustive()
    }
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path` (truncating any existing file).
    pub fn create(path: impl AsRef<Path>, meta: &TraceMeta) -> Result<Self, TraceError> {
        Self::new(BufWriter::new(File::create(path)?), meta)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace on `sink`, writing the header immediately (with a
    /// record-count placeholder that [`finish`](Self::finish) patches).
    ///
    /// Rejects workload names longer than `MAX_NAME_LEN` bytes — the
    /// reader enforces the same bound, and the writer must never produce
    /// a file its own reader rejects.
    pub fn new(mut sink: W, meta: &TraceMeta) -> Result<Self, TraceError> {
        if meta.name.len() > MAX_NAME_LEN {
            return Err(TraceError::BadHeader(format!(
                "workload name is {} bytes (max {MAX_NAME_LEN})",
                meta.name.len()
            )));
        }
        sink.write_all(&meta.encode_header(COUNT_UNKNOWN))?;
        Ok(TraceWriter {
            sink,
            chunk: Vec::with_capacity(CHUNK_RECORDS as usize * 8),
            chunk_records: 0,
            delta: DeltaState::default(),
            records: 0,
            chunks: 0,
            payload_bytes: 0,
        })
    }

    /// Appends one record.
    pub fn push(&mut self, record: &TraceRecord) -> Result<(), TraceError> {
        encode_record(&mut self.chunk, &mut self.delta, record);
        self.chunk_records += 1;
        self.records += 1;
        if self.chunk_records >= CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends one dynamic instruction (convenience for recording).
    pub fn push_instr(&mut self, instr: &DynInstr) -> Result<(), TraceError> {
        self.push(&TraceRecord::from(instr))
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        self.sink.write_all(&self.chunk_records.to_le_bytes())?;
        self.sink
            .write_all(&(self.chunk.len() as u32).to_le_bytes())?;
        self.sink.write_all(&crc32(&self.chunk).to_le_bytes())?;
        self.sink.write_all(&self.chunk)?;
        self.payload_bytes += self.chunk.len() as u64;
        self.chunks += 1;
        self.chunk.clear();
        self.chunk_records = 0;
        self.delta.reset();
        Ok(())
    }

    /// Flushes the final chunk, patches the header's record count, and
    /// returns the summary plus the underlying sink.
    pub fn finish(mut self) -> Result<(TraceSummary, W), TraceError> {
        self.flush_chunk()?;
        let end = self.sink.stream_position()?;
        self.sink.seek(SeekFrom::Start(16))?;
        self.sink.write_all(&self.records.to_le_bytes())?;
        self.sink.seek(SeekFrom::Start(end))?;
        self.sink.flush()?;
        Ok((
            TraceSummary {
                records: self.records,
                chunks: self.chunks,
                payload_bytes: self.payload_bytes,
            },
            self.sink,
        ))
    }
}

/// A cloneable recorder that plugs into the simulator's
/// [`TraceSink`] hook and writes a trace file.
///
/// Ownership works around the machine owning its sinks: the recorder is a
/// shared handle, [`sink`](Self::sink) hands a clone to
/// `MachineBuilder::trace_sink`, and after the run
/// [`finish`](Self::finish) finalizes the file from the handle kept by
/// the caller. I/O errors during recording are stashed and reported by
/// `finish` (the hot path stays infallible for the simulator).
///
/// # Examples
///
/// ```no_run
/// use paco::PacoConfig;
/// use paco_sim::{EstimatorKind, MachineBuilder, SimConfig};
/// use paco_trace::{TraceMeta, TraceRecorder};
/// use paco_workloads::BenchmarkId;
///
/// let workload = BenchmarkId::Gzip.build(1);
/// let recorder =
///     TraceRecorder::create("gzip.paco-trace", &TraceMeta::for_workload(&workload)).unwrap();
/// let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
///     .thread(Box::new(workload), EstimatorKind::Paco(PacoConfig::paper()))
///     .trace_sink(recorder.sink())
///     .build();
/// machine.run(100_000);
/// let summary = recorder.finish().unwrap();
/// assert!(summary.records >= 100_000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    // Shared via Arc<Mutex<..>> (not Rc<RefCell<..>>) so the sink handle
    // is `Send` and a recording machine can run on an experiment-engine
    // worker thread. Recording is single-threaded per machine, so the
    // mutex is uncontended.
    inner: Arc<Mutex<RecorderInner>>,
}

#[derive(Debug)]
struct RecorderInner {
    writer: Option<TraceWriter<BufWriter<File>>>,
    error: Option<TraceError>,
}

impl TraceRecorder {
    /// Creates a recorder writing to `path`.
    pub fn create(path: impl AsRef<Path>, meta: &TraceMeta) -> Result<Self, TraceError> {
        let writer = TraceWriter::create(path, meta)?;
        Ok(TraceRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                writer: Some(writer),
                error: None,
            })),
        })
    }

    /// A boxed sink for `MachineBuilder::trace_sink`, sharing this
    /// recorder's underlying writer.
    pub fn sink(&self) -> Box<dyn TraceSink> {
        let handle = self.clone();
        Box::new(move |instr: &DynInstr| handle.record(instr))
    }

    fn record(&self, instr: &DynInstr) {
        let mut inner = self.inner.lock().expect("recorder mutex poisoned");
        if inner.error.is_some() {
            return;
        }
        if let Some(writer) = &mut inner.writer {
            if let Err(e) = writer.push_instr(instr) {
                inner.error = Some(e);
            }
        }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.inner
            .lock()
            .expect("recorder mutex poisoned")
            .writer
            .as_ref()
            .map_or(0, TraceWriter::records)
    }

    /// Finalizes the trace file.
    ///
    /// Reports any I/O error stashed during recording. Call after the
    /// simulation completes (other clones of the recorder, e.g. the one
    /// inside the machine, become inert no-ops).
    pub fn finish(self) -> Result<TraceSummary, TraceError> {
        let mut inner = self.inner.lock().expect("recorder mutex poisoned");
        if let Some(e) = inner.error.take() {
            return Err(e);
        }
        let writer = inner
            .writer
            .take()
            .ok_or_else(|| TraceError::BadHeader("recorder already finished".into()))?;
        writer.finish().map(|(summary, _)| summary)
    }
}
