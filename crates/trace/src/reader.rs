//! Streaming, checksum-verifying trace reading.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use crate::error::TraceError;
use crate::format::{crc32, TraceMeta, HEADER_FIXED_LEN, MAX_CHUNK_PAYLOAD, MAX_NAME_LEN};
use crate::record::{decode_record, DeltaState, TraceRecord};

/// Reads a trace chunk by chunk; memory use is bounded by the largest
/// chunk, not the trace length.
///
/// Each chunk's CRC-32 is verified before any of its records are
/// surfaced, so a decoded record is always trustworthy. Use
/// [`records`](Self::records) for iteration, [`rewind`](Self::rewind) to
/// restart (replay looping), and [`meta`](Self::meta) for the recorded
/// workload identity.
pub struct TraceReader<R: Read + Seek> {
    src: R,
    meta: TraceMeta,
    declared: Option<u64>,
    data_start: u64,
    payload: Vec<u8>,
    pos: usize,
    chunk_left: u32,
    delta: DeltaState,
    chunk_index: u64,
    records_seen: u64,
}

impl<R: Read + Seek> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("meta", &self.meta)
            .field("records_seen", &self.records_seen)
            .field("chunk_index", &self.chunk_index)
            .finish_non_exhaustive()
    }
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

/// Reads until `buf` is full or EOF; returns the bytes read. The caller
/// maps a short count to clean-EOF (0 at an item boundary) or truncation.
fn fill(src: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = src.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

impl<R: Read + Seek> TraceReader<R> {
    /// Starts reading a trace from `src`, validating the header.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut fixed = [0u8; HEADER_FIXED_LEN];
        src.read_exact(&mut fixed)
            .map_err(|_| TraceError::BadHeader("file shorter than the fixed header".into()))?;
        let name_len = u32::from_le_bytes(fixed[68..72].try_into().unwrap());
        if name_len as usize > MAX_NAME_LEN {
            return Err(TraceError::BadHeader(format!(
                "implausible workload name length {name_len}"
            )));
        }
        let mut name = vec![0u8; name_len as usize];
        src.read_exact(&mut name)
            .map_err(|_| TraceError::BadHeader("file ends inside the workload name".into()))?;
        let (meta, declared) = TraceMeta::decode_header(&fixed, &name)?;
        let data_start = (HEADER_FIXED_LEN + name.len()) as u64;
        Ok(TraceReader {
            src,
            meta,
            declared,
            data_start,
            payload: Vec::new(),
            pos: 0,
            chunk_left: 0,
            delta: DeltaState::default(),
            chunk_index: 0,
            records_seen: 0,
        })
    }

    /// The recorded workload identity.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The record count declared in the header, if the trace was
    /// finalized.
    pub fn declared_records(&self) -> Option<u64> {
        self.declared
    }

    /// Records surfaced since construction or the last rewind.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Restarts the stream at the first record.
    pub fn rewind(&mut self) -> Result<(), TraceError> {
        self.src.seek(SeekFrom::Start(self.data_start))?;
        self.payload.clear();
        self.pos = 0;
        self.chunk_left = 0;
        self.delta.reset();
        self.chunk_index = 0;
        self.records_seen = 0;
        Ok(())
    }

    fn load_next_chunk(&mut self) -> Result<bool, TraceError> {
        let truncated = |chunk| TraceError::Truncated { chunk };
        let mut header = [0u8; 12];
        let got = fill(&mut self.src, &mut header)?;
        if got != header.len() {
            if got > 0 {
                return Err(truncated(self.chunk_index));
            }
            // Clean end of file: every declared record must have been
            // surfaced, otherwise the file lost whole chunks.
            if let Some(declared) = self.declared {
                if self.records_seen < declared {
                    return Err(TraceError::Truncated {
                        chunk: self.chunk_index,
                    });
                }
            }
            return Ok(false);
        }
        let record_count = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let payload_len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let checksum = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if record_count == 0 || payload_len == 0 || payload_len > MAX_CHUNK_PAYLOAD {
            return Err(TraceError::CorruptChunk {
                chunk: self.chunk_index,
                detail: format!(
                    "implausible chunk framing ({record_count} records, {payload_len} bytes)"
                ),
            });
        }
        self.payload.resize(payload_len as usize, 0);
        if fill(&mut self.src, &mut self.payload)? != payload_len as usize {
            return Err(truncated(self.chunk_index));
        }
        if crc32(&self.payload) != checksum {
            return Err(TraceError::CorruptChunk {
                chunk: self.chunk_index,
                detail: "checksum mismatch".into(),
            });
        }
        self.pos = 0;
        self.chunk_left = record_count;
        self.delta.reset();
        Ok(true)
    }

    /// The next record, or `Ok(None)` at a clean end of trace.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.chunk_left == 0 {
            if self.pos < self.payload.len() {
                return Err(TraceError::CorruptChunk {
                    chunk: self.chunk_index,
                    detail: format!(
                        "{} trailing payload bytes after the last record",
                        self.payload.len() - self.pos
                    ),
                });
            }
            if !self.payload.is_empty() {
                self.chunk_index += 1;
                self.payload.clear();
            }
            if !self.load_next_chunk()? {
                return Ok(None);
            }
        }
        let mut slice = &self.payload[self.pos..];
        let before = slice.len();
        let record = decode_record(&mut slice, &mut self.delta).map_err(|detail| {
            TraceError::CorruptChunk {
                chunk: self.chunk_index,
                detail: detail.into(),
            }
        })?;
        self.pos += before - slice.len();
        self.chunk_left -= 1;
        if self.chunk_left == 0 && self.pos != self.payload.len() {
            return Err(TraceError::CorruptChunk {
                chunk: self.chunk_index,
                detail: format!(
                    "{} trailing payload bytes after the last record",
                    self.payload.len() - self.pos
                ),
            });
        }
        self.records_seen += 1;
        Ok(Some(record))
    }

    /// Iterator over the remaining records.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::io::Cursor;
    /// use paco_trace::{TraceMeta, TraceReader, TraceWriter};
    /// use paco_workloads::{BenchmarkId, Workload};
    ///
    /// let mut w = BenchmarkId::Twolf.build(9);
    /// let mut writer =
    ///     TraceWriter::new(Cursor::new(Vec::new()), &TraceMeta::for_workload(&w)).unwrap();
    /// let recorded: Vec<_> = (0..50).map(|_| w.next_instr()).collect();
    /// for i in &recorded {
    ///     writer.push_instr(i).unwrap();
    /// }
    /// let (_, cursor) = writer.finish().unwrap();
    ///
    /// let mut reader = TraceReader::new(Cursor::new(cursor.into_inner())).unwrap();
    /// let replayed: Vec<_> = reader
    ///     .records()
    ///     .map(|r| paco_types::DynInstr::from(r.unwrap()))
    ///     .collect();
    /// assert_eq!(replayed, recorded);
    /// ```
    pub fn records(&mut self) -> Records<'_, R> {
        Records { reader: self }
    }
}

/// Iterator returned by [`TraceReader::records`].
#[derive(Debug)]
pub struct Records<'a, R: Read + Seek> {
    reader: &'a mut TraceReader<R>,
}

impl<R: Read + Seek> Iterator for Records<'_, R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_record().transpose()
    }
}
