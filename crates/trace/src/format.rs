//! On-disk format primitives: magic/version constants, LEB128 varints,
//! ZigZag signed mapping, CRC-32 checksums and the header metadata block.
//!
//! See the crate-level docs for the full format specification.

use crate::error::TraceError;
use paco_workloads::{DataParams, Workload, WrongPathParams};

/// File magic: the first eight bytes of every trace.
pub const MAGIC: [u8; 8] = *b"PACOTRAC";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Records per chunk (the writer's flush threshold).
pub const CHUNK_RECORDS: u32 = 4096;

/// Upper bound accepted for a chunk payload, guarding decoders against
/// corrupt length fields. Generous: a worst-case record is < 40 bytes.
pub const MAX_CHUNK_PAYLOAD: u32 = 1 << 22;

/// Sentinel stored in the header's record-count field until
/// `TraceWriter::finish` patches in the real count.
pub const COUNT_UNKNOWN: u64 = u64::MAX;

/// Fixed-size header prefix length (up to and excluding the name bytes).
pub const HEADER_FIXED_LEN: usize = 72;

/// Maximum workload-name length, enforced symmetrically by writer and
/// reader.
pub const MAX_NAME_LEN: usize = 4096;

/// Workload identity recorded in a trace header.
///
/// Carries everything replay needs beyond the instruction stream itself:
/// the display name and the wrong-path synthesis parameters that make a
/// replayed run reproduce the live run's wrong-path excursions exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Workload display name (e.g. the benchmark the model imitates).
    pub name: String,
    /// Wrong-path synthesis parameters of the recorded workload.
    pub params: WrongPathParams,
}

impl TraceMeta {
    /// Captures the metadata of a live workload.
    pub fn for_workload(workload: &dyn Workload) -> Self {
        TraceMeta {
            name: workload.name().to_string(),
            params: workload.wrong_path_params(),
        }
    }

    /// Serializes the header (fixed prefix + name), with the record count
    /// field set to `count`.
    pub(crate) fn encode_header(&self, count: u64) -> Vec<u8> {
        let name = self.name.as_bytes();
        let mut out = Vec::with_capacity(HEADER_FIXED_LEN + name.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&((HEADER_FIXED_LEN + name.len()) as u32).to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&self.params.code_base.to_le_bytes());
        out.extend_from_slice(&self.params.code_bytes.to_le_bytes());
        out.extend_from_slice(&self.params.data.base.to_le_bytes());
        out.extend_from_slice(&self.params.data.footprint.to_le_bytes());
        out.extend_from_slice(&self.params.data.locality.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.params.data.streams as u32).to_le_bytes());
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        debug_assert_eq!(out.len(), HEADER_FIXED_LEN + name.len());
        out
    }

    /// Parses a header from the fixed prefix plus name bytes; returns the
    /// metadata, the declared record count, and the total header length.
    pub(crate) fn decode_header(
        fixed: &[u8; HEADER_FIXED_LEN],
        name: &[u8],
    ) -> Result<(Self, Option<u64>), TraceError> {
        let u32_at = |o: usize| u32::from_le_bytes(fixed[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(fixed[o..o + 8].try_into().unwrap());
        if fixed[..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let header_len = u32_at(12) as usize;
        if header_len != HEADER_FIXED_LEN + name.len() {
            return Err(TraceError::BadHeader(format!(
                "header_len {header_len} disagrees with fixed prefix + name ({})",
                HEADER_FIXED_LEN + name.len()
            )));
        }
        let count = u64_at(16);
        let locality = f64::from_bits(u64_at(56));
        if !(0.0..=1.0).contains(&locality) {
            return Err(TraceError::BadHeader(format!(
                "data locality {locality} outside [0, 1]"
            )));
        }
        let name = String::from_utf8(name.to_vec())
            .map_err(|_| TraceError::BadHeader("workload name is not UTF-8".into()))?;
        let meta = TraceMeta {
            name,
            params: WrongPathParams {
                code_base: u64_at(24),
                code_bytes: u64_at(32),
                data: DataParams {
                    base: u64_at(40),
                    footprint: u64_at(48),
                    locality,
                    streams: u32_at(64) as usize,
                },
            },
        };
        let declared = (count != COUNT_UNKNOWN).then_some(count);
        Ok((meta, declared))
    }
}

/// Appends `v` as a LEB128 varint.
#[inline]
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `input`, advancing it.
/// `None` on truncation or a varint longer than 10 bytes.
#[inline]
pub fn read_uvarint(input: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    for (i, &byte) in input.iter().take(10).enumerate() {
        v |= ((byte & 0x7f) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Some(v);
        }
    }
    None
}

/// Maps a signed delta onto the unsigned varint domain (small magnitudes
/// of either sign encode in one byte).
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `data`, used as the per-chunk checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            buf.clear();
            write_uvarint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_uvarint(&mut s), Some(v));
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 8); // a sequential +4 PC delta, zigzagged
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut s: &[u8] = &[0x80, 0x80];
        assert_eq!(read_uvarint(&mut s), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, 4, i64::MAX, i64::MIN, -123_456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_round_trips() {
        let meta = TraceMeta {
            name: "gzip".into(),
            params: WrongPathParams {
                code_base: 0x40_0000,
                code_bytes: 1 << 16,
                data: DataParams::friendly(),
            },
        };
        let bytes = meta.encode_header(12345);
        let fixed: [u8; HEADER_FIXED_LEN] = bytes[..HEADER_FIXED_LEN].try_into().unwrap();
        let (back, declared) =
            TraceMeta::decode_header(&fixed, &bytes[HEADER_FIXED_LEN..]).unwrap();
        assert_eq!(back, meta);
        assert_eq!(declared, Some(12345));
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let meta = TraceMeta {
            name: "x".into(),
            params: WrongPathParams {
                code_base: 0,
                code_bytes: 64,
                data: DataParams::friendly(),
            },
        };
        let bytes = meta.encode_header(COUNT_UNKNOWN);
        let mut fixed: [u8; HEADER_FIXED_LEN] = bytes[..HEADER_FIXED_LEN].try_into().unwrap();
        fixed[0] ^= 0xff;
        assert!(matches!(
            TraceMeta::decode_header(&fixed, b"x"),
            Err(TraceError::BadMagic)
        ));
        let mut fixed: [u8; HEADER_FIXED_LEN] = bytes[..HEADER_FIXED_LEN].try_into().unwrap();
        fixed[8] = 99;
        assert!(matches!(
            TraceMeta::decode_header(&fixed, b"x"),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }
}
