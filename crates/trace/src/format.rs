//! On-disk format primitives: magic/version constants and the header
//! metadata block.
//!
//! The byte-level codec (LEB128 varints, ZigZag signed mapping, CRC-32)
//! is the workspace-wide [`paco_types::wire`] module, re-exported here so
//! existing `paco_trace::{crc32, read_uvarint, write_uvarint}` callers
//! keep working. See the crate-level docs for the full format
//! specification.

use crate::error::TraceError;
use paco_workloads::{DataParams, Workload, WrongPathParams};

pub use paco_types::wire::{crc32, read_uvarint, unzigzag, write_uvarint, zigzag};

/// File magic: the first eight bytes of every trace.
pub const MAGIC: [u8; 8] = *b"PACOTRAC";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Records per chunk (the writer's flush threshold).
pub const CHUNK_RECORDS: u32 = 4096;

/// Upper bound accepted for a chunk payload, guarding decoders against
/// corrupt length fields. Generous: a worst-case record is < 40 bytes.
pub const MAX_CHUNK_PAYLOAD: u32 = 1 << 22;

/// Sentinel stored in the header's record-count field until
/// `TraceWriter::finish` patches in the real count.
pub const COUNT_UNKNOWN: u64 = u64::MAX;

/// Fixed-size header prefix length (up to and excluding the name bytes).
pub const HEADER_FIXED_LEN: usize = 72;

/// Maximum workload-name length, enforced symmetrically by writer and
/// reader.
pub const MAX_NAME_LEN: usize = 4096;

/// Workload identity recorded in a trace header.
///
/// Carries everything replay needs beyond the instruction stream itself:
/// the display name and the wrong-path synthesis parameters that make a
/// replayed run reproduce the live run's wrong-path excursions exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Workload display name (e.g. the benchmark the model imitates).
    pub name: String,
    /// Wrong-path synthesis parameters of the recorded workload.
    pub params: WrongPathParams,
}

impl TraceMeta {
    /// Captures the metadata of a live workload.
    pub fn for_workload(workload: &dyn Workload) -> Self {
        TraceMeta {
            name: workload.name().to_string(),
            params: workload.wrong_path_params(),
        }
    }

    /// Serializes the header (fixed prefix + name), with the record count
    /// field set to `count`.
    pub(crate) fn encode_header(&self, count: u64) -> Vec<u8> {
        let name = self.name.as_bytes();
        let mut out = Vec::with_capacity(HEADER_FIXED_LEN + name.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&((HEADER_FIXED_LEN + name.len()) as u32).to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&self.params.code_base.to_le_bytes());
        out.extend_from_slice(&self.params.code_bytes.to_le_bytes());
        out.extend_from_slice(&self.params.data.base.to_le_bytes());
        out.extend_from_slice(&self.params.data.footprint.to_le_bytes());
        out.extend_from_slice(&self.params.data.locality.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.params.data.streams as u32).to_le_bytes());
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        debug_assert_eq!(out.len(), HEADER_FIXED_LEN + name.len());
        out
    }

    /// Parses a header from the fixed prefix plus name bytes; returns the
    /// metadata, the declared record count, and the total header length.
    pub(crate) fn decode_header(
        fixed: &[u8; HEADER_FIXED_LEN],
        name: &[u8],
    ) -> Result<(Self, Option<u64>), TraceError> {
        let u32_at = |o: usize| u32::from_le_bytes(fixed[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(fixed[o..o + 8].try_into().unwrap());
        if fixed[..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let header_len = u32_at(12) as usize;
        if header_len != HEADER_FIXED_LEN + name.len() {
            return Err(TraceError::BadHeader(format!(
                "header_len {header_len} disagrees with fixed prefix + name ({})",
                HEADER_FIXED_LEN + name.len()
            )));
        }
        let count = u64_at(16);
        let locality = f64::from_bits(u64_at(56));
        if !(0.0..=1.0).contains(&locality) {
            return Err(TraceError::BadHeader(format!(
                "data locality {locality} outside [0, 1]"
            )));
        }
        let name = String::from_utf8(name.to_vec())
            .map_err(|_| TraceError::BadHeader("workload name is not UTF-8".into()))?;
        let meta = TraceMeta {
            name,
            params: WrongPathParams {
                code_base: u64_at(24),
                code_bytes: u64_at(32),
                data: DataParams {
                    base: u64_at(40),
                    footprint: u64_at(48),
                    locality,
                    streams: u32_at(64) as usize,
                },
            },
        };
        let declared = (count != COUNT_UNKNOWN).then_some(count);
        Ok((meta, declared))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let meta = TraceMeta {
            name: "gzip".into(),
            params: WrongPathParams {
                code_base: 0x40_0000,
                code_bytes: 1 << 16,
                data: DataParams::friendly(),
            },
        };
        let bytes = meta.encode_header(12345);
        let fixed: [u8; HEADER_FIXED_LEN] = bytes[..HEADER_FIXED_LEN].try_into().unwrap();
        let (back, declared) =
            TraceMeta::decode_header(&fixed, &bytes[HEADER_FIXED_LEN..]).unwrap();
        assert_eq!(back, meta);
        assert_eq!(declared, Some(12345));
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let meta = TraceMeta {
            name: "x".into(),
            params: WrongPathParams {
                code_base: 0,
                code_bytes: 64,
                data: DataParams::friendly(),
            },
        };
        let bytes = meta.encode_header(COUNT_UNKNOWN);
        let mut fixed: [u8; HEADER_FIXED_LEN] = bytes[..HEADER_FIXED_LEN].try_into().unwrap();
        fixed[0] ^= 0xff;
        assert!(matches!(
            TraceMeta::decode_header(&fixed, b"x"),
            Err(TraceError::BadMagic)
        ));
        let mut fixed: [u8; HEADER_FIXED_LEN] = bytes[..HEADER_FIXED_LEN].try_into().unwrap();
        fixed[8] = 99;
        assert!(matches!(
            TraceMeta::decode_header(&fixed, b"x"),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }
}
