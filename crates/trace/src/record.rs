//! The logical trace record and its delta+varint wire encoding.

use crate::format::{read_uvarint, unzigzag, write_uvarint, zigzag};
use paco_types::{DynInstr, InstrClass, MemAccess, Pc};

/// Flag bit: the control instruction's architectural outcome was taken.
const FLAG_TAKEN: u8 = 0x10;
/// Flag bit: a memory address follows.
const FLAG_MEM: u8 = 0x20;
/// Flag bit: two dependency distances follow.
const FLAG_DEPS: u8 = 0x40;
/// Mask of the class-code nibble.
const CLASS_MASK: u8 = 0x0f;

/// One retired-instruction record: the serializable form of a
/// [`DynInstr`].
///
/// Covers the program counter, the instruction kind, the branch outcome
/// and taken-target for control flow, the effective address for memory
/// operations, and the two dependency distances (the latter so that
/// replayed timing — not just the branch stream — matches the live run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Program counter.
    pub pc: u64,
    /// Functional class (and control kind, for control flow).
    pub class: InstrClass,
    /// Input dependency distances (0 = unused).
    pub deps: [u32; 2],
    /// Effective address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Architectural outcome, for control flow.
    pub taken: bool,
    /// Taken-target address, for control flow.
    pub target: u64,
}

impl From<&DynInstr> for TraceRecord {
    fn from(i: &DynInstr) -> Self {
        TraceRecord {
            pc: i.pc.addr(),
            class: i.class,
            deps: i.deps,
            mem_addr: i.mem.map(|m| m.addr),
            taken: i.taken,
            target: i.target.addr(),
        }
    }
}

impl From<TraceRecord> for DynInstr {
    fn from(r: TraceRecord) -> Self {
        DynInstr {
            pc: Pc::new(r.pc),
            class: r.class,
            deps: r.deps,
            mem: r.mem_addr.map(|addr| MemAccess { addr }),
            taken: r.taken,
            target: Pc::new(r.target),
        }
    }
}

/// Streaming delta state shared by the encoder and decoder.
///
/// PC and memory addresses are encoded as deltas against the previous
/// record's values (ZigZag + LEB128), which makes sequential code and
/// strided data streams encode in one or two bytes. State resets at every
/// chunk boundary so chunks decode independently.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaState {
    prev_pc: u64,
    prev_mem: u64,
}

impl DeltaState {
    /// Fresh state, as at the start of a chunk.
    pub fn reset(&mut self) {
        *self = DeltaState::default();
    }
}

/// Appends the wire encoding of `record` to `out`.
pub fn encode_record(out: &mut Vec<u8>, state: &mut DeltaState, record: &TraceRecord) {
    let has_deps = record.deps != [0, 0];
    let mut flags = record.class.code();
    debug_assert_eq!(flags & CLASS_MASK, flags);
    if record.taken {
        flags |= FLAG_TAKEN;
    }
    if record.mem_addr.is_some() {
        flags |= FLAG_MEM;
    }
    if has_deps {
        flags |= FLAG_DEPS;
    }
    out.push(flags);
    write_uvarint(out, zigzag(record.pc.wrapping_sub(state.prev_pc) as i64));
    state.prev_pc = record.pc;
    if has_deps {
        write_uvarint(out, record.deps[0] as u64);
        write_uvarint(out, record.deps[1] as u64);
    }
    if let Some(addr) = record.mem_addr {
        write_uvarint(out, zigzag(addr.wrapping_sub(state.prev_mem) as i64));
        state.prev_mem = addr;
    }
    if record.class.is_control() {
        write_uvarint(out, zigzag(record.target.wrapping_sub(record.pc) as i64));
    }
}

/// Decodes one record from the front of `input`, advancing it.
///
/// Returns `Err` with a human-readable reason on malformed input (the
/// caller wraps it in a chunk-level error).
pub fn decode_record(
    input: &mut &[u8],
    state: &mut DeltaState,
) -> Result<TraceRecord, &'static str> {
    let (&flags, rest) = input.split_first().ok_or("record flags missing")?;
    *input = rest;
    let class =
        InstrClass::from_code(flags & CLASS_MASK).ok_or("unknown instruction class code")?;
    let pc_delta = read_uvarint(input).ok_or("pc delta missing")?;
    let pc = state.prev_pc.wrapping_add(unzigzag(pc_delta) as u64);
    state.prev_pc = pc;
    let deps = if flags & FLAG_DEPS != 0 {
        let d0 = read_uvarint(input).ok_or("dep 0 missing")?;
        let d1 = read_uvarint(input).ok_or("dep 1 missing")?;
        [
            u32::try_from(d0).map_err(|_| "dep 0 out of range")?,
            u32::try_from(d1).map_err(|_| "dep 1 out of range")?,
        ]
    } else {
        [0, 0]
    };
    let mem_addr = if flags & FLAG_MEM != 0 {
        let delta = read_uvarint(input).ok_or("memory address missing")?;
        let addr = state.prev_mem.wrapping_add(unzigzag(delta) as u64);
        state.prev_mem = addr;
        Some(addr)
    } else {
        None
    };
    let target = if class.is_control() {
        let delta = read_uvarint(input).ok_or("branch target missing")?;
        pc.wrapping_add(unzigzag(delta) as u64)
    } else {
        0
    };
    Ok(TraceRecord {
        pc,
        class,
        deps,
        mem_addr,
        taken: flags & FLAG_TAKEN != 0,
        target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_types::ControlKind;

    fn round_trip(records: &[TraceRecord]) {
        let mut buf = Vec::new();
        let mut enc = DeltaState::default();
        for r in records {
            encode_record(&mut buf, &mut enc, r);
        }
        let mut dec = DeltaState::default();
        let mut s = buf.as_slice();
        for r in records {
            assert_eq!(decode_record(&mut s, &mut dec).unwrap(), *r);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn encodes_all_shapes() {
        round_trip(&[
            TraceRecord::from(&DynInstr::alu(Pc::new(0x40_0000))),
            TraceRecord::from(&DynInstr::alu(Pc::new(0x40_0004)).with_deps(1, 3)),
            TraceRecord::from(&DynInstr::alu(Pc::new(0x40_0008)).with_mem(0x1000_0000)),
            TraceRecord::from(&DynInstr::branch(
                Pc::new(0x40_000c),
                true,
                Pc::new(0x40_0100),
            )),
            TraceRecord {
                pc: 0x40_0100,
                class: InstrClass::Control(ControlKind::Return),
                deps: [0, 0],
                mem_addr: None,
                taken: true,
                target: 0x40_0010,
            },
            TraceRecord {
                pc: 0x40_0010,
                class: InstrClass::Store,
                deps: [2, 0],
                mem_addr: Some(0x1000_0008),
                taken: false,
                target: 0,
            },
        ]);
    }

    #[test]
    fn sequential_code_is_one_byte_of_pc() {
        let mut buf = Vec::new();
        let mut enc = DeltaState::default();
        encode_record(
            &mut buf,
            &mut enc,
            &TraceRecord::from(&DynInstr::alu(Pc::new(0x40_0000))),
        );
        let first = buf.len();
        encode_record(
            &mut buf,
            &mut enc,
            &TraceRecord::from(&DynInstr::alu(Pc::new(0x40_0004))),
        );
        // flags + one-byte zigzag(+4) delta.
        assert_eq!(buf.len() - first, 2);
    }

    #[test]
    fn decode_rejects_unknown_class() {
        let mut s: &[u8] = &[0x0f, 0x00];
        assert!(decode_record(&mut s, &mut DeltaState::default()).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        let mut enc = DeltaState::default();
        encode_record(
            &mut buf,
            &mut enc,
            &TraceRecord::from(&DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000))),
        );
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            assert!(
                decode_record(&mut s, &mut DeltaState::default()).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn dyn_instr_conversion_round_trips() {
        let i = DynInstr::branch(Pc::new(0x8000), false, Pc::new(0x9000)).with_deps(4, 0);
        assert_eq!(DynInstr::from(TraceRecord::from(&i)), i);
    }
}
