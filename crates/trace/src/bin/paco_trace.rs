//! `paco-trace`: record, replay, inspect and compare branch traces.
//!
//! ```text
//! paco-trace record --bench <name> --out <file> [--instrs N] [--seed S] [--sim]
//! paco-trace replay --trace <file> [--instrs N] [--seed S] [--estimator paco|count|none]
//! paco-trace info   --trace <file>
//! paco-trace diff   <a> <b>
//! ```
//!
//! `record` captures a synthetic benchmark's goodpath stream directly
//! (fast path), or — with `--sim` — by running the cycle-level simulator
//! with a `TraceRecorder` attached to its trace-sink hook, which also
//! captures the in-flight tail needed for bit-exact replay of that run.
//! `replay` streams a trace back through the simulator.

use std::process::ExitCode;

use paco::{PacoConfig, ThresholdCountConfig};
use paco_sim::{EstimatorKind, MachineBuilder, SimConfig};
use paco_trace::{open_workload, TraceError, TraceMeta, TraceReader, TraceRecorder, TraceWriter};
use paco_types::InstrClass;
use paco_workloads::{BenchmarkId, Workload, ALL_BENCHMARKS};

const USAGE: &str = "\
usage:
  paco-trace record --bench <name> --out <file> [--instrs N] [--seed S] [--sim]
  paco-trace replay --trace <file> [--instrs N] [--seed S] [--estimator paco|count|none]
  paco-trace info   --trace <file>
  paco-trace diff   <a> <b>

benchmarks: bzip2 crafty gcc gap gzip mcf parser perlbmk twolf vortex
            vprPlace vprRoute
defaults:   --instrs 1000000, --seed 1, --estimator paco";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("paco-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Minimal flag parser: `--key value` pairs plus positionals.
struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], keys: &[&str], switches: &[&str]) -> Result<Self, String> {
        let mut flags = Flags {
            pairs: Vec::new(),
            positional: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    flags.switches.push(name.to_string());
                } else if keys.contains(&name) {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.pairs.push((name.to_string(), value.clone()));
                    i += 1;
                } else {
                    let mut known: Vec<&str> = keys.iter().chain(switches).copied().collect();
                    known.sort_unstable();
                    return Err(format!(
                        "unknown flag `--{name}` (known: --{})",
                        known.join(" --")
                    ));
                }
            } else {
                flags.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(flags)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn parse_bench(name: &str) -> Result<BenchmarkId, String> {
    BenchmarkId::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
        format!("unknown benchmark `{name}` (known: {})", known.join(" "))
    })
}

fn parse_estimator(name: &str) -> Result<EstimatorKind, String> {
    match name {
        "paco" => Ok(EstimatorKind::Paco(PacoConfig::paper())),
        "count" => Ok(EstimatorKind::ThresholdCount(
            ThresholdCountConfig::paper_default(),
        )),
        "none" => Ok(EstimatorKind::None),
        other => Err(format!("unknown estimator `{other}` (paco|count|none)")),
    }
}

fn trace_err(e: TraceError) -> String {
    e.to_string()
}

fn record(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &["bench", "out", "instrs", "seed"], &["sim"])?;
    let bench = parse_bench(flags.get("bench").ok_or("record needs --bench")?)?;
    let out = flags.get("out").ok_or("record needs --out")?.to_string();
    let instrs = flags.get_u64("instrs", 1_000_000)?;
    let seed = flags.get_u64("seed", 1)?;

    let summary = if flags.has("sim") {
        let workload = bench.build(seed);
        let recorder =
            TraceRecorder::create(&out, &TraceMeta::for_workload(&workload)).map_err(trace_err)?;
        let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
            .thread(Box::new(workload), EstimatorKind::Paco(PacoConfig::paper()))
            .trace_sink(recorder.sink())
            .seed(seed)
            .build();
        let stats = machine.run(instrs);
        let summary = recorder.finish().map_err(trace_err)?;
        println!(
            "simulated {} cycles, retired {} instructions",
            stats.cycles, stats.threads[0].retired
        );
        summary
    } else {
        let mut workload = bench.build(seed);
        let mut writer =
            TraceWriter::create(&out, &TraceMeta::for_workload(&workload)).map_err(trace_err)?;
        for _ in 0..instrs {
            writer
                .push_instr(&workload.next_instr())
                .map_err(trace_err)?;
        }
        let (summary, _) = writer.finish().map_err(trace_err)?;
        summary
    };
    println!(
        "recorded {} -> {out}: {} records, {} chunks, {:.2} payload bytes/record",
        bench.name(),
        summary.records,
        summary.chunks,
        summary.payload_bytes as f64 / summary.records.max(1) as f64,
    );
    Ok(ExitCode::SUCCESS)
}

fn replay(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &["trace", "instrs", "seed", "estimator"], &[])?;
    let path = flags.get("trace").ok_or("replay needs --trace")?;
    let instrs = flags.get_u64("instrs", 1_000_000)?;
    let seed = flags.get_u64("seed", 1)?;
    let estimator = parse_estimator(flags.get("estimator").unwrap_or("paco"))?;

    let workload = open_workload(path).map_err(trace_err)?;
    let name = workload.name().to_string();
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(workload), estimator)
        .seed(seed)
        .build();
    let stats = machine.run(instrs);
    let t = &stats.threads[0];
    println!("replayed {name} from {path}");
    println!("  cycles               {}", stats.cycles);
    println!("  retired              {}", t.retired);
    println!("  ipc                  {:.3}", stats.ipc(0));
    println!(
        "  cond mispredict      {} ({:.2}%)",
        t.cond_mispredicted,
        t.cond_mispredict_pct().unwrap_or(0.0)
    );
    println!(
        "  overall mispredict   {} ({:.2}%)",
        t.control_mispredicted,
        t.overall_mispredict_pct().unwrap_or(0.0)
    );
    println!("  wrong-path fetched   {}", t.fetched_badpath);
    Ok(ExitCode::SUCCESS)
}

fn info(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &["trace"], &[])?;
    let path = flags.get("trace").ok_or("info needs --trace")?;
    let mut reader = TraceReader::open(path).map_err(trace_err)?;
    let meta = reader.meta().clone();
    let declared = reader.declared_records();

    let mut per_class = [0u64; 10];
    let mut taken = 0u64;
    let mut control = 0u64;
    let mut records = 0u64;
    for r in reader.records() {
        let r = r.map_err(trace_err)?;
        per_class[r.class.code() as usize] += 1;
        records += 1;
        if r.class.is_control() {
            control += 1;
            taken += r.taken as u64;
        }
    }
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);

    println!("{path}");
    println!("  workload        {}", meta.name);
    println!(
        "  code footprint  {:#x} + {} bytes",
        meta.params.code_base, meta.params.code_bytes
    );
    println!(
        "  data footprint  {:#x} + {} bytes ({} streams, locality {:.2})",
        meta.params.data.base,
        meta.params.data.footprint,
        meta.params.data.streams,
        meta.params.data.locality
    );
    match declared {
        Some(d) => println!("  records         {records} (header declares {d})"),
        None => println!("  records         {records} (header not finalized)"),
    }
    println!(
        "  file size       {bytes} bytes ({:.2} bytes/record)",
        bytes as f64 / records.max(1) as f64
    );
    let class_names = [
        "alu", "muldiv", "load", "store", "nop", "cond", "jump", "call", "indirect", "return",
    ];
    for (name, &n) in class_names.iter().zip(&per_class) {
        if n > 0 {
            println!(
                "  {name:<8}        {n} ({:.2}%)",
                100.0 * n as f64 / records as f64
            );
        }
    }
    if control > 0 {
        println!(
            "  taken rate      {:.2}% of {control} control instructions",
            100.0 * taken as f64 / control as f64
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn diff(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &[], &[])?;
    let [a_path, b_path] = flags.positional.as_slice() else {
        return Err("diff needs exactly two trace paths".into());
    };
    let mut a = TraceReader::open(a_path).map_err(trace_err)?;
    let mut b = TraceReader::open(b_path).map_err(trace_err)?;
    if a.meta() != b.meta() {
        println!("headers differ:");
        println!("  a: {:?}", a.meta());
        println!("  b: {:?}", b.meta());
        return Ok(ExitCode::FAILURE);
    }
    let mut index = 0u64;
    loop {
        let ra = a.next_record().map_err(|e| format!("{a_path}: {e}"))?;
        let rb = b.next_record().map_err(|e| format!("{b_path}: {e}"))?;
        match (ra, rb) {
            (None, None) => {
                println!("identical ({index} records)");
                return Ok(ExitCode::SUCCESS);
            }
            (Some(_), None) => {
                println!("{b_path} ends at record {index}; {a_path} continues");
                return Ok(ExitCode::FAILURE);
            }
            (None, Some(_)) => {
                println!("{a_path} ends at record {index}; {b_path} continues");
                return Ok(ExitCode::FAILURE);
            }
            (Some(ra), Some(rb)) if ra != rb => {
                println!("first divergence at record {index}:");
                println!("  a: {ra:?}");
                println!("  b: {rb:?}");
                return Ok(ExitCode::FAILURE);
            }
            _ => index += 1,
        }
    }
}

/// Classes are indexed by `InstrClass::code()`, which `info` relies on
/// staying dense; keep this assertion in sync with the types crate.
#[allow(dead_code)]
const _: () = {
    assert!(InstrClass::Alu.code() == 0);
    assert!(InstrClass::from_code(9).is_some());
    assert!(InstrClass::from_code(10).is_none());
};
