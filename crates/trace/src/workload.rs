//! Glue between the on-disk trace format and the simulator's
//! [`Workload`](paco_workloads::Workload) abstraction.

use std::fs::File;
use std::io::{BufReader, Read, Seek};
use std::path::Path;

use paco_types::DynInstr;
use paco_workloads::{BufferSource, ReplaySource, TraceWorkload};

use crate::error::TraceError;
use crate::reader::TraceReader;

/// A streaming [`ReplaySource`] over a validated trace.
///
/// Construction via [`open_workload`] validates the entire file once
/// (checksums, record well-formedness, declared count); a subsequent
/// mid-replay failure can then only come from the file changing under the
/// reader, which panics — a replayed simulation cannot continue on a
/// diverged stream (see the [`ReplaySource`] contract).
pub struct TraceReplaySource<R: Read + Seek> {
    reader: TraceReader<R>,
    len: u64,
}

impl<R: Read + Seek> std::fmt::Debug for TraceReplaySource<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReplaySource")
            .field("reader", &self.reader)
            .field("len", &self.len)
            .finish()
    }
}

impl<R: Read + Seek> TraceReplaySource<R> {
    /// Validates every chunk of `reader`, rewinds, and wraps it.
    pub fn new(mut reader: TraceReader<R>) -> Result<Self, TraceError> {
        let mut len = 0u64;
        while reader.next_record()?.is_some() {
            len += 1;
        }
        if len == 0 {
            return Err(TraceError::Empty);
        }
        reader.rewind()?;
        Ok(TraceReplaySource { reader, len })
    }
}

impl<R: Read + Seek + Send> ReplaySource for TraceReplaySource<R> {
    fn next_record(&mut self) -> Option<DynInstr> {
        self.reader
            .next_record()
            .unwrap_or_else(|e| panic!("validated trace failed mid-replay: {e}"))
            .map(DynInstr::from)
    }

    fn rewind(&mut self) {
        self.reader
            .rewind()
            .unwrap_or_else(|e| panic!("validated trace failed to rewind: {e}"));
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len)
    }
}

/// Opens a trace file as a streaming replay [`TraceWorkload`].
///
/// The file is fully validated up front but **not** held in memory:
/// replay re-reads it chunk by chunk (and seeks back to the start when
/// the simulated run outlives the trace). Use [`load_workload`] to trade
/// memory for decode-free replay.
pub fn open_workload(path: impl AsRef<Path>) -> Result<TraceWorkload, TraceError> {
    let reader = TraceReader::open(path)?;
    let meta = reader.meta().clone();
    let source = TraceReplaySource::new(reader)?;
    Ok(TraceWorkload::new(meta.name, meta.params, Box::new(source)))
}

/// Loads a trace file fully into memory as a replay [`TraceWorkload`].
///
/// Decoding happens once at load time; replay (and looping) then serves
/// records straight from a vector, which is the fastest option for
/// benchmarking and for traces that fit in memory comfortably.
pub fn load_workload(path: impl AsRef<Path>) -> Result<TraceWorkload, TraceError> {
    let mut reader = TraceReader::open(path)?;
    let meta = reader.meta().clone();
    let records = collect_records(&mut reader)?;
    Ok(TraceWorkload::new(
        meta.name,
        meta.params,
        Box::new(BufferSource::new(records)),
    ))
}

/// Decodes all remaining records of `reader` into memory.
pub fn collect_records<R: Read + Seek>(
    reader: &mut TraceReader<R>,
) -> Result<Vec<DynInstr>, TraceError> {
    let mut records = Vec::new();
    while let Some(r) = reader.next_record()? {
        records.push(DynInstr::from(r));
    }
    if records.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(records)
}

/// Opens an in-memory trace image as a streaming replay workload
/// (convenience for benches and tests).
pub fn workload_from_bytes(bytes: Vec<u8>) -> Result<TraceWorkload, TraceError> {
    let reader = TraceReader::new(std::io::Cursor::new(bytes))?;
    let meta = reader.meta().clone();
    let source = TraceReplaySource::new(reader)?;
    Ok(TraceWorkload::new(meta.name, meta.params, Box::new(source)))
}

// Keep the concrete file-backed type nameable for callers that want it.
/// Streaming source type produced by [`open_workload`].
pub type FileReplaySource = TraceReplaySource<BufReader<File>>;
