//! Error type for trace encoding, decoding and I/O.

use std::fmt;

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format version is not supported by this reader.
    UnsupportedVersion(u32),
    /// The header is structurally invalid.
    BadHeader(String),
    /// The file ends in the middle of a chunk header or payload.
    Truncated {
        /// Index of the chunk being read when the file ended.
        chunk: u64,
    },
    /// A chunk failed checksum or record-level validation.
    CorruptChunk {
        /// Index of the offending chunk.
        chunk: u64,
        /// What failed.
        detail: String,
    },
    /// The trace contains no records (cannot back a replay workload).
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a paco trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::BadHeader(detail) => write!(f, "invalid trace header: {detail}"),
            TraceError::Truncated { chunk } => {
                write!(f, "trace truncated in chunk {chunk}")
            }
            TraceError::CorruptChunk { chunk, detail } => {
                write!(f, "corrupt trace chunk {chunk}: {detail}")
            }
            TraceError::Empty => write!(f, "trace contains no records"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
