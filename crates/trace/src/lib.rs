//! Binary branch-trace record/replay for the PaCo reproduction.
//!
//! The simulator normally regenerates every instruction stream from
//! synthetic CFG walks on each run. This crate adds the missing
//! substrate of trace-driven methodology: **record** the goodpath
//! instruction stream of any workload (or of a live simulation, via the
//! simulator's `TraceSink` hook) into a compact binary file, then
//! **replay** it through any simulator entry point via
//! [`paco_workloads::TraceWorkload`] — bit-for-bit identical to the live
//! run, including wrong-path excursions, which are re-synthesized from
//! parameters carried in the trace header.
//!
//! # On-disk format (version 1)
//!
//! All integers are little-endian. A trace is a fixed header followed by
//! independent, checksummed chunks:
//!
//! ```text
//! file   := header chunk*
//! header := magic        8 bytes   b"PACOTRAC"
//!           version      u32       1
//!           header_len   u32       72 + name_len
//!           record_count u64       total records; 0xFFFF…FF until finalized
//!           code_base    u64       wrong-path code footprint base address
//!           code_bytes   u64       wrong-path code footprint size
//!           data_base    u64       wrong-path data region base address
//!           data_footprint u64     wrong-path data footprint size
//!           data_locality u64      f64 bits, stream locality in [0,1]
//!           data_streams u32       number of sequential data streams
//!           name_len     u32       workload name length (bytes)
//!           name         name_len  workload name, UTF-8
//! chunk  := record_count u32       records in this chunk (≤ 4096, > 0)
//!           payload_len  u32       encoded payload bytes
//!           crc32        u32       CRC-32 (IEEE) of the payload
//!           payload      payload_len bytes
//! ```
//!
//! Each chunk's payload is a sequence of records; the delta-coding state
//! resets at every chunk boundary, so chunks decode independently and
//! files stream without being loaded into memory. Per record:
//!
//! ```text
//! record := flags        u8        bits 0–3: instruction-class code
//!                                  (paco_types::InstrClass::code);
//!                                  bit 4: taken, bit 5: has memory
//!                                  address, bit 6: has dependencies
//!           pc_delta     uvarint   zigzag(pc − previous record's pc)
//!          [deps         2×uvarint dependency distances, if bit 6]
//!          [mem_delta    uvarint   zigzag(addr − previous memory
//!                                  address), if bit 5]
//!          [target_delta uvarint   zigzag(target − pc), if the class is
//!                                  control flow]
//! ```
//!
//! `uvarint` is LEB128; `zigzag` maps signed deltas to unsigned
//! (`(v << 1) ^ (v >> 63)`). Sequential straight-line code costs two
//! bytes per instruction (flags + a one-byte +4 PC delta); in practice
//! whole traces land around 3–4 bytes per retired instruction.
//!
//! # Record, then replay
//!
//! ```
//! use std::io::Cursor;
//! use paco_trace::{workload_from_bytes, TraceMeta, TraceWriter};
//! use paco_workloads::{BenchmarkId, Workload};
//!
//! // Record 10k instructions of the gzip model…
//! let mut live = BenchmarkId::Gzip.build(42);
//! let mut writer =
//!     TraceWriter::new(Cursor::new(Vec::new()), &TraceMeta::for_workload(&live)).unwrap();
//! for _ in 0..10_000 {
//!     writer.push_instr(&live.next_instr()).unwrap();
//! }
//! let (summary, cursor) = writer.finish().unwrap();
//! assert_eq!(summary.records, 10_000);
//!
//! // …and replay them: the streams are identical.
//! let mut replay = workload_from_bytes(cursor.into_inner()).unwrap();
//! let mut check = BenchmarkId::Gzip.build(42);
//! for _ in 0..10_000 {
//!     assert_eq!(replay.next_instr(), check.next_instr());
//! }
//! ```
//!
//! The `paco-trace` binary (`src/bin/paco_trace.rs`) wraps this into
//! `record`, `replay`, `info` and `diff` subcommands.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod format;
mod reader;
mod record;
mod workload;
mod writer;

pub use error::TraceError;
pub use format::{
    crc32, read_uvarint, unzigzag, write_uvarint, zigzag, TraceMeta, CHUNK_RECORDS, COUNT_UNKNOWN,
    FORMAT_VERSION, MAGIC,
};
pub use reader::{Records, TraceReader};
pub use record::{decode_record, encode_record, DeltaState, TraceRecord};
pub use workload::{
    collect_records, load_workload, open_workload, workload_from_bytes, FileReplaySource,
    TraceReplaySource,
};
pub use writer::{TraceRecorder, TraceSummary, TraceWriter};
