//! Property-based tests for the PaCo core: token discipline, encoding
//! algebra, MRT counter behaviour and log-circuit error bounds.

use paco::{
    BranchFetchInfo, BranchToken, EncodedProb, LogCircuit, LogMode, MrtBucket, PacoConfig,
    PacoPredictor, PathConfidenceEstimator, ThresholdCountConfig, ThresholdCountPredictor,
};
use paco_branch::Mdc;
use paco_types::Probability;
use proptest::prelude::*;

/// An abstract event stream for a path-confidence estimator.
#[derive(Debug, Clone)]
enum Event {
    /// Fetch a conditional branch with the given MDC value.
    Fetch(u8),
    /// Fetch non-conditional control flow.
    FetchOther,
    /// Resolve the oldest outstanding branch (mispredicted flag).
    Resolve(bool),
    /// Squash the youngest outstanding branch.
    Squash,
    /// Advance time.
    Tick(u16),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..16).prop_map(Event::Fetch),
        Just(Event::FetchOther),
        any::<bool>().prop_map(Event::Resolve),
        Just(Event::Squash),
        (1u16..1000).prop_map(Event::Tick),
    ]
}

/// Drives an estimator through an arbitrary event sequence, maintaining
/// the outstanding-token list the way the simulator's ROB would.
fn drive<E: PathConfidenceEstimator>(est: &mut E, events: &[Event]) -> Vec<BranchToken> {
    let mut outstanding: Vec<BranchToken> = Vec::new();
    for ev in events {
        match ev {
            Event::Fetch(mdc) => {
                outstanding.push(est.on_fetch(BranchFetchInfo::conditional_keyed(
                    Mdc::new(*mdc),
                    *mdc as u64 * 977,
                )));
            }
            Event::FetchOther => {
                outstanding.push(est.on_fetch(BranchFetchInfo::non_conditional()));
            }
            Event::Resolve(mispred) => {
                if !outstanding.is_empty() {
                    let t = outstanding.remove(0);
                    est.on_resolve(t, *mispred);
                }
            }
            Event::Squash => {
                if let Some(t) = outstanding.pop() {
                    est.on_squash(t);
                }
            }
            Event::Tick(c) => est.tick(*c as u64),
        }
    }
    outstanding
}

proptest! {
    /// After any event sequence, PaCo's confidence register equals the sum
    /// of the outstanding tokens' contributions; surrendering the rest
    /// drives it to exactly zero.
    #[test]
    fn paco_register_balances(events in proptest::collection::vec(event_strategy(), 0..300)) {
        let mut paco = PacoPredictor::new(PacoConfig::paper().with_refresh_period(500));
        let outstanding = drive(&mut paco, &events);
        let expected: u64 = outstanding.iter().map(|t| t.encoded_contribution() as u64).sum();
        prop_assert_eq!(paco.score().0, expected);
        for t in outstanding {
            paco.on_squash(t);
        }
        prop_assert_eq!(paco.score().0, 0);
        prop_assert_eq!(paco.goodpath_probability().unwrap().value(), 1.0);
    }

    /// The threshold-and-count counter equals the number of outstanding
    /// low-confidence tokens under any event sequence.
    #[test]
    fn counter_balances(
        events in proptest::collection::vec(event_strategy(), 0..300),
        threshold in 1u8..16,
    ) {
        let mut est = ThresholdCountPredictor::new(ThresholdCountConfig::with_threshold(threshold));
        let outstanding = drive(&mut est, &events);
        let expected = outstanding.iter().filter(|t| t.is_low_confidence()).count() as u64;
        prop_assert_eq!(est.score().0, expected);
        for t in outstanding {
            est.on_squash(t);
        }
        prop_assert_eq!(est.score().0, 0);
    }

    /// Encoding is antitone: a larger probability never encodes to a
    /// larger value.
    #[test]
    fn encoding_is_antitone(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let e_lo = EncodedProb::from_probability(Probability::new(lo).unwrap());
        let e_hi = EncodedProb::from_probability(Probability::new(hi).unwrap());
        prop_assert!(e_hi <= e_lo);
    }

    /// Round-tripping through the encoded domain loses at most the fixed
    /// saturation floor.
    #[test]
    fn encoding_round_trip(p in 0.0701f64..=1.0) {
        let enc = EncodedProb::from_probability(Probability::new(p).unwrap());
        let back = enc.to_probability().value();
        prop_assert!((back - p).abs() < 0.01, "p={p} back={back}");
    }

    /// Encoded addition corresponds to probability multiplication.
    #[test]
    fn encoded_addition_is_multiplication(a in 0.3f64..=1.0, b in 0.3f64..=1.0) {
        let ea = EncodedProb::from_probability(Probability::new(a).unwrap());
        let eb = EncodedProb::from_probability(Probability::new(b).unwrap());
        let sum = ea.saturating_add(eb);
        let expect = a * b;
        let got = sum.to_probability().value();
        // Two ceil roundings: at most ~2/1024 bits of error.
        prop_assert!((got - expect).abs() / expect < 0.01, "a={a} b={b} got={got}");
    }

    /// MRT buckets preserve their mispredict rate across counter-overflow
    /// halvings and never exceed hardware widths.
    #[test]
    fn mrt_bucket_rate_stable(outcomes in proptest::collection::vec(any::<bool>(), 1..5000)) {
        let mut bucket = MrtBucket::default();
        let mut correct = 0u64;
        let mut mispred = 0u64;
        for &m in &outcomes {
            bucket.record(m);
            if m { mispred += 1 } else { correct += 1 }
            prop_assert!(bucket.correct() <= MrtBucket::CORRECT_MAX);
            prop_assert!(bucket.mispred() <= MrtBucket::MISPRED_MAX);
        }
        let true_rate = mispred as f64 / (correct + mispred) as f64;
        let bucket_rate = bucket.mispred() as f64 / bucket.total().max(1) as f64;
        // Halving preserves the rate up to quantization on small counters.
        prop_assert!((true_rate - bucket_rate).abs() < 0.25,
            "true {true_rate:.3} vs bucket {bucket_rate:.3}");
    }

    /// Mitchell's approximation stays within its theoretical error bound
    /// of the exact log over the full counter range.
    #[test]
    fn mitchell_bounded_error(x in 1u32..=2048) {
        let m = LogCircuit::new(LogMode::Mitchell).log2_fixed(x) as i64;
        let e = LogCircuit::new(LogMode::Exact).log2_fixed(x) as i64;
        // Mitchell underestimates log2 by at most ~0.0861 bits (88 fixed-
        // point units); allow rounding slack.
        prop_assert!(e - m >= -1, "Mitchell must not overestimate: x={x}");
        prop_assert!(e - m <= 90, "error too large at x={x}: {}", e - m);
    }

    /// The ratio encoding never exceeds saturation and is zero only when
    /// no mispredicts were recorded.
    #[test]
    fn ratio_encoding_bounds(correct in 0u32..1024, mispred in 0u32..64) {
        let enc = LogCircuit::new(LogMode::Mitchell).encode_ratio(correct, mispred);
        prop_assert!(enc.raw() <= EncodedProb::SATURATION);
        if correct > 0 && mispred == 0 {
            prop_assert_eq!(enc, EncodedProb::CERTAIN);
        }
        if correct == 0 && mispred > 0 {
            prop_assert_eq!(enc, EncodedProb::MAX);
        }
    }
}
