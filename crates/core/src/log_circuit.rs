//! The binary-logarithm circuit used to convert MRT counter values into
//! encoded probabilities.
//!
//! The paper cites Mitchell (1962): base-2 logarithms of small integers can
//! be computed with "a very simple circuit consisting of a shift register
//! and a counter". The characteristic of the log is the position of the
//! leading one (found by shifting); the mantissa is approximated linearly
//! by the bits below the leading one.

use crate::EncodedProb;
use paco_types::canon::Canon;

/// Which logarithm implementation the MRT refresh uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogMode {
    /// The hardware Mitchell shift-register approximation (paper default).
    #[default]
    Mitchell,
    /// An exact floating-point log, for ablating the approximation cost.
    Exact,
}

impl Canon for LogMode {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x10); // type tag
        out.push(match self {
            LogMode::Mitchell => 0,
            LogMode::Exact => 1,
        });
    }
}

/// The logarithmizing-and-scaling circuit.
///
/// Converts counter ratios into encoded probabilities:
/// `encode(c, m) = 1024·(log₂(c+m) − log₂(c)) = −1024·log₂(c/(c+m))`.
///
/// Because both terms use the same approximation, part of the Mitchell
/// error cancels in the subtraction; the unit tests bound the residual
/// error against the exact log.
///
/// # Examples
///
/// ```
/// use paco::{LogCircuit, LogMode};
///
/// let circuit = LogCircuit::new(LogMode::Mitchell);
/// // A bucket that saw 512 correct predictions and 512 mispredicts has a
/// // correct-prediction probability of 1/2, which encodes to ~1024.
/// let enc = circuit.encode_ratio(512, 512);
/// assert!((enc.raw() as i64 - 1024).abs() <= 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogCircuit {
    mode: LogMode,
}

impl LogCircuit {
    /// Creates a log circuit in the given mode.
    pub const fn new(mode: LogMode) -> Self {
        LogCircuit { mode }
    }

    /// The configured mode.
    pub const fn mode(self) -> LogMode {
        self.mode
    }

    /// Computes `1024·log₂(x)` for `x ≥ 1` in fixed point.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0` (the caller must handle empty buckets).
    pub fn log2_fixed(self, x: u32) -> u32 {
        assert!(x > 0, "log of zero is undefined");
        match self.mode {
            LogMode::Exact => (1024.0 * (x as f64).log2()).round() as u32,
            LogMode::Mitchell => Self::mitchell_log2_fixed(x),
        }
    }

    /// Mitchell's shift-register approximation of `1024·log₂(x)`.
    ///
    /// Finds the characteristic k by shifting until only the leading one
    /// remains (the "counter" counts shifts), then uses the k bits below
    /// the leading one, aligned to 10 fractional bits, as the mantissa.
    fn mitchell_log2_fixed(x: u32) -> u32 {
        // Characteristic: position of the leading one. A hardware shift
        // register would shift left and count; this loop mirrors that.
        let mut k = 0u32;
        let mut probe = x;
        while probe > 1 {
            probe >>= 1;
            k += 1;
        }
        if k == 0 {
            return 0; // x == 1
        }
        // Mantissa: bits below the leading one, scaled to 1/1024 units.
        let frac_bits = x - (1u32 << k);
        let mantissa = if k >= 10 {
            frac_bits >> (k - 10)
        } else {
            frac_bits << (10 - k)
        };
        1024 * k + mantissa
    }

    /// Encodes the correct-prediction probability of a bucket with
    /// `correct` correct predictions and `mispred` mispredicts:
    /// `−1024·log₂(correct / (correct + mispred))`, saturated at 2¹².
    ///
    /// A bucket that never saw a correct prediction saturates; a bucket
    /// that never mispredicted encodes to certainty (0).
    pub fn encode_ratio(self, correct: u32, mispred: u32) -> EncodedProb {
        if correct == 0 {
            return EncodedProb::MAX;
        }
        if mispred == 0 {
            return EncodedProb::CERTAIN;
        }
        let total = correct + mispred;
        let raw = self
            .log2_fixed(total)
            .saturating_sub(self.log2_fixed(correct));
        EncodedProb::from_raw(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_powers_of_two() {
        let c = LogCircuit::new(LogMode::Mitchell);
        assert_eq!(c.log2_fixed(1), 0);
        assert_eq!(c.log2_fixed(2), 1024);
        assert_eq!(c.log2_fixed(4), 2048);
        assert_eq!(c.log2_fixed(512), 9 * 1024);
        assert_eq!(c.log2_fixed(1024), 10 * 1024);
    }

    #[test]
    fn mitchell_error_bound_against_exact() {
        // Mitchell's relative error on log2 is bounded; over the 10-bit MRT
        // counter range the absolute fixed-point error stays below
        // 0.09 * 1024 ≈ 90 units.
        let mitchell = LogCircuit::new(LogMode::Mitchell);
        let exact = LogCircuit::new(LogMode::Exact);
        for x in 1u32..=1024 {
            let m = mitchell.log2_fixed(x) as i64;
            let e = exact.log2_fixed(x) as i64;
            assert!((m - e).abs() <= 90, "x={x} mitchell={m} exact={e}");
        }
    }

    #[test]
    fn encode_ratio_matches_probability_encoding() {
        use paco_types::Probability;
        let circuit = LogCircuit::new(LogMode::Exact);
        let enc = circuit.encode_ratio(900, 100);
        let reference = EncodedProb::from_probability(Probability::new(0.9).unwrap());
        assert!(
            (enc.raw() as i64 - reference.raw() as i64).abs() <= 2,
            "enc={} ref={}",
            enc.raw(),
            reference.raw()
        );
    }

    #[test]
    fn mitchell_ratio_error_cancels() {
        // The subtraction cancels much of the Mitchell error: the encoded
        // ratio stays within ~100 fixed-point units (≈0.1 bit, a ~7%
        // probability factor) of the exact encoding — consistent with the
        // paper's measured 3.8% RMS accuracy.
        let mitchell = LogCircuit::new(LogMode::Mitchell);
        let exact = LogCircuit::new(LogMode::Exact);
        for &(c, m) in &[
            (1000u32, 5u32),
            (900, 100),
            (750, 250),
            (512, 512),
            (600, 30),
            (60, 40),
            (10, 3),
        ] {
            let a = mitchell.encode_ratio(c, m).raw() as i64;
            let b = exact.encode_ratio(c, m).raw() as i64;
            assert!((a - b).abs() <= 100, "c={c} m={m} mitchell={a} exact={b}");
        }
    }

    #[test]
    fn degenerate_buckets() {
        let c = LogCircuit::new(LogMode::Mitchell);
        assert_eq!(c.encode_ratio(0, 10), EncodedProb::MAX);
        assert_eq!(c.encode_ratio(10, 0), EncodedProb::CERTAIN);
        // Worse than 93.75% mispredict saturates.
        assert_eq!(c.encode_ratio(1, 63), EncodedProb::MAX);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn log_of_zero_panics() {
        LogCircuit::new(LogMode::Mitchell).log2_fixed(0);
    }
}
