//! The path confidence calculator: a running sum of encoded probabilities.

use crate::EncodedProb;
use paco_types::Probability;

/// The hardware path-confidence register (paper Fig. 5, right half).
///
/// Holds the running sum of the encoded correct-prediction probabilities of
/// all unresolved branches. When a branch is fetched its encoding is added;
/// when it executes (or is squashed) the same encoding is subtracted.
///
/// # Examples
///
/// ```
/// use paco::{PathConfidenceCalculator, EncodedProb};
///
/// let mut calc = PathConfidenceCalculator::new();
/// calc.add(EncodedProb::from_raw(1024)); // a 50%-correct branch in flight
/// assert!((calc.goodpath_probability().value() - 0.5).abs() < 1e-9);
/// calc.remove(EncodedProb::from_raw(1024));
/// assert_eq!(calc.goodpath_probability().value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathConfidenceCalculator {
    sum: u64,
    outstanding: u32,
}

impl PathConfidenceCalculator {
    /// Creates an empty calculator (no unresolved branches: certainty).
    pub fn new() -> Self {
        PathConfidenceCalculator {
            sum: 0,
            outstanding: 0,
        }
    }

    /// Adds a fetched branch's encoded probability.
    #[inline]
    pub fn add(&mut self, enc: EncodedProb) {
        self.sum += enc.raw() as u64;
        self.outstanding += 1;
    }

    /// Removes a resolved or squashed branch's contribution.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the removal would drive the register
    /// negative or no branch is outstanding — both indicate a token
    /// discipline bug in the caller.
    #[inline]
    pub fn remove(&mut self, enc: EncodedProb) {
        debug_assert!(self.outstanding > 0, "no outstanding branches");
        debug_assert!(self.sum >= enc.raw() as u64, "confidence sum underflow");
        self.sum = self.sum.saturating_sub(enc.raw() as u64);
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// The current encoded goodpath probability (the register value).
    #[inline]
    pub const fn encoded_sum(&self) -> u64 {
        self.sum
    }

    /// Number of branches currently contributing.
    #[inline]
    pub const fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Decodes the register to a real goodpath probability
    /// (`2^(−sum/1024)`); reporting-only, never on the hot path.
    pub fn goodpath_probability(&self) -> Probability {
        Probability::clamped((-(self.sum as f64) / EncodedProb::SCALE as f64).exp2())
    }

    /// Appends the register state (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        paco_types::wire::write_uvarint(out, self.sum);
        paco_types::wire::write_uvarint(out, self.outstanding as u64);
    }

    /// Restores state saved by [`save_state`](Self::save_state); `false`
    /// on truncated or inconsistent input.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        let Some(sum) = paco_types::wire::read_uvarint(input) else {
            return false;
        };
        let Some(outstanding) =
            paco_types::wire::read_uvarint(input).and_then(|v| v.try_into().ok())
        else {
            return false;
        };
        // A non-empty register with no outstanding branches can never be
        // produced by the add/remove discipline.
        if sum > 0 && outstanding == 0 {
            return false;
        }
        self.sum = sum;
        self.outstanding = outstanding;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_register_is_certainty() {
        let c = PathConfidenceCalculator::new();
        assert_eq!(c.encoded_sum(), 0);
        assert_eq!(c.goodpath_probability().value(), 1.0);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn contributions_add_and_remove_symmetrically() {
        let mut c = PathConfidenceCalculator::new();
        let e1 = EncodedProb::from_raw(100);
        let e2 = EncodedProb::from_raw(250);
        c.add(e1);
        c.add(e2);
        assert_eq!(c.encoded_sum(), 350);
        assert_eq!(c.outstanding(), 2);
        c.remove(e1);
        assert_eq!(c.encoded_sum(), 250);
        c.remove(e2);
        assert_eq!(c.encoded_sum(), 0);
    }

    #[test]
    fn sum_can_exceed_single_branch_saturation() {
        // The register is wider than one branch's 12-bit encoding: many
        // unresolved low-confidence branches accumulate.
        let mut c = PathConfidenceCalculator::new();
        for _ in 0..10 {
            c.add(EncodedProb::MAX);
        }
        assert_eq!(c.encoded_sum(), 10 * 4096);
        assert!(c.goodpath_probability().value() < 1e-9);
    }

    #[test]
    fn probability_decode_matches_expected() {
        let mut c = PathConfidenceCalculator::new();
        c.add(EncodedProb::from_raw(2048)); // 2^-2 = 0.25
        assert!((c.goodpath_probability().value() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn underflow_is_caught_in_debug() {
        let mut c = PathConfidenceCalculator::new();
        c.remove(EncodedProb::from_raw(1));
    }
}
