//! The common interface all path-confidence estimators expose to the
//! simulator front end.

use paco_branch::Mdc;
use paco_types::Probability;

/// Information available about a branch at fetch/prediction time.
///
/// Only conditional branches carry an MDC value — the JRS table does not
/// cover jumps, indirect calls or returns (the root of the paper's
/// `perlbmk` pathology). `table_key` is a hash of (PC, global history)
/// used by the per-branch MRT ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchFetchInfo {
    /// The branch's MDC value, if it is a conditional branch.
    pub mdc: Option<Mdc>,
    /// Hash of (PC, global history) for per-branch tables.
    pub table_key: u64,
}

impl BranchFetchInfo {
    /// Fetch info for a conditional branch with the given MDC value.
    pub fn conditional(mdc: Mdc) -> Self {
        BranchFetchInfo {
            mdc: Some(mdc),
            table_key: 0,
        }
    }

    /// Fetch info for a conditional branch with an explicit per-branch
    /// table key.
    pub fn conditional_keyed(mdc: Mdc, table_key: u64) -> Self {
        BranchFetchInfo {
            mdc: Some(mdc),
            table_key,
        }
    }

    /// Fetch info for non-conditional control flow (no MDC coverage).
    pub fn non_conditional() -> Self {
        BranchFetchInfo {
            mdc: None,
            table_key: 0,
        }
    }
}

/// A token returned at branch fetch and surrendered at branch resolution
/// (or squash).
///
/// Hardware would track the contribution of each in-flight branch in its
/// ROB entry / rename checkpoint; the token models exactly that. Storing
/// the added value in the token guarantees the confidence register returns
/// to a consistent state even if the MRT encodings are refreshed while the
/// branch is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "the token must be surrendered via on_resolve or on_squash"]
pub struct BranchToken {
    /// Encoded-probability contribution added to the confidence register.
    pub(crate) encoded: u32,
    /// Whether the branch was counted as low-confidence.
    pub(crate) low_conf: bool,
    /// The MDC value captured at fetch.
    pub(crate) mdc: Option<Mdc>,
    /// Per-branch table key captured at fetch.
    pub(crate) table_key: u64,
}

impl BranchToken {
    /// A token carrying no contribution (non-conditional control flow).
    pub fn empty() -> Self {
        BranchToken {
            encoded: 0,
            low_conf: false,
            mdc: None,
            table_key: 0,
        }
    }

    /// The encoded contribution this token added.
    pub fn encoded_contribution(&self) -> u32 {
        self.encoded
    }

    /// Whether the branch was classified low-confidence at fetch.
    pub fn is_low_confidence(&self) -> bool {
        self.low_conf
    }

    /// Appends the token's state (for session snapshots: an in-flight
    /// branch's token must survive a snapshot/restore cycle so it can
    /// still be surrendered afterwards).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        use paco_types::wire::write_uvarint;
        write_uvarint(out, self.encoded as u64);
        out.push(self.low_conf as u8);
        match self.mdc {
            None => out.push(0xff),
            Some(mdc) => out.push(mdc.value()),
        }
        write_uvarint(out, self.table_key);
    }

    /// Reads a token saved by [`save_state`](Self::save_state), advancing
    /// `input`; `None` on truncation or malformed fields.
    pub fn load_state(input: &mut &[u8]) -> Option<Self> {
        use paco_types::wire::read_uvarint;
        let encoded = u32::try_from(read_uvarint(input)?).ok()?;
        let (&low, rest) = input.split_first()?;
        let (&mdc_byte, rest) = rest.split_first()?;
        *input = rest;
        let mdc = match mdc_byte {
            0xff => None,
            v if (v as usize) < Mdc::BUCKETS => Some(Mdc::new(v)),
            _ => return None,
        };
        if low > 1 {
            return None;
        }
        let table_key = read_uvarint(input)?;
        Some(BranchToken {
            encoded,
            low_conf: low == 1,
            mdc,
            table_key,
        })
    }
}

/// A comparable confidence score: **lower is more confident** (more likely
/// to be on the goodpath).
///
/// For PaCo the score is the encoded-probability sum; for
/// threshold-and-count predictors it is the number of unresolved
/// low-confidence branches. Scores are only comparable between estimators
/// of the same kind — SMT fetch prioritization always compares two
/// instances of the same estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ConfidenceScore(pub u64);

impl std::fmt::Display for ConfidenceScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One chunk of the batched hot path's estimator work: the per-event
/// inputs for a run of consecutive control events, pre-staged by the
/// pipeline's table pass so the estimator pass can consume the whole
/// chunk in one monomorphized call
/// ([`PathConfidenceEstimator::on_chunk`]).
///
/// The resolve schedule is implicit and exact: event `j` performs one
/// resolve iff `j >= first_resolve_event`; resolve `r = j -
/// first_resolve_event` surrenders `window_resolves[r]` while `r` is in
/// range (branches that entered the in-flight window before this chunk)
/// and after that the token of in-chunk event `r - window_resolves.len()`
/// (which the estimator itself produced earlier in the chunk). This is
/// byte-for-byte the schedule the per-event reference produces with a
/// `resolve_lag`-deep window.
#[derive(Debug)]
pub struct EstimatorChunk<'a> {
    /// Fetch-time info for each event, in order. The MDC values inside
    /// were read by the table pass at exactly the per-event points.
    pub fetch: &'a [BranchFetchInfo],
    /// Whether each event's *own* branch was mispredicted — consumed
    /// when that branch resolves in-chunk (`false` for non-conditional
    /// events, matching the reference resolve).
    pub mispredicted: &'a [bool],
    /// `(token, mispredicted)` for resolves that surrender pre-chunk
    /// window entries, in pop (oldest-first) order.
    pub window_resolves: &'a [(BranchToken, bool)],
    /// The first event index that performs a resolve (events before it
    /// only fill the still-warming window).
    pub first_resolve_event: usize,
    /// Cycles ticked after each event.
    pub ticks: u64,
}

/// Where [`PathConfidenceEstimator::on_chunk`] writes its per-event
/// outputs. All slices have the chunk's length.
#[derive(Debug)]
pub struct ChunkOut<'a> {
    /// The token fetched for each event (the caller windows these).
    pub tokens: &'a mut [BranchToken],
    /// [`score`](PathConfidenceEstimator::score) after each fetch.
    pub scores: &'a mut [u64],
    /// IEEE-754 bits of the goodpath probability after each fetch
    /// (meaningful only where `has_prob` is set).
    pub probs: &'a mut [u64],
    /// Whether the estimator produced a probability for each event.
    pub has_prob: &'a mut [bool],
}

/// A path-confidence estimator: tracks the unresolved branches of one
/// hardware thread and produces a confidence estimate for the current
/// fetch path.
///
/// The front end drives the estimator with three events:
///
/// 1. [`on_fetch`](Self::on_fetch) when a control instruction is fetched
///    (returns a [`BranchToken`]);
/// 2. [`on_resolve`](Self::on_resolve) when the branch executes;
/// 3. [`on_squash`](Self::on_squash) when the branch is squashed by an
///    older mispredicted branch.
///
/// Every token returned by `on_fetch` must be surrendered by exactly one
/// call to `on_resolve` or `on_squash`.
///
/// Estimators are `Send`: the experiment engine builds and runs machines
/// on worker threads, so every estimator (like every workload) must be
/// movable across threads.
pub trait PathConfidenceEstimator: Send {
    /// Registers a fetched control instruction.
    fn on_fetch(&mut self, info: BranchFetchInfo) -> BranchToken;

    /// Registers the resolution (execution) of a branch.
    fn on_resolve(&mut self, token: BranchToken, mispredicted: bool);

    /// Removes a squashed in-flight branch without training.
    fn on_squash(&mut self, token: BranchToken);

    /// Advances simulated time by `cycles` (drives periodic refresh logic).
    fn tick(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// The current confidence score — lower means more likely on goodpath.
    fn score(&self) -> ConfidenceScore;

    /// The predicted goodpath probability, if this estimator produces one.
    ///
    /// Threshold-and-count predictors return `None`: the paper's central
    /// criticism is precisely that their counter value is not a
    /// probability.
    fn goodpath_probability(&self) -> Option<Probability> {
        None
    }

    /// Appends the estimator's full mutable state to `out` (counters,
    /// latched encodings, refresh timers — everything needed to resume
    /// bit-identically). The blob is only meaningful to an estimator
    /// built from the same configuration.
    ///
    /// The streaming confidence service snapshots sessions with this so a
    /// reconnecting client resumes exactly where it left off. Stateless
    /// estimators (the default) save nothing.
    fn save_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Restores state saved by [`save_state`](Self::save_state) by an
    /// identically configured estimator, advancing `input` past the blob.
    /// Returns `false` on truncated or inconsistent input, after which
    /// the estimator must be discarded (it may be partially restored).
    fn load_state(&mut self, input: &mut &[u8]) -> bool {
        let _ = input;
        true
    }

    /// Processes one pre-staged chunk of consecutive events — the
    /// estimator pass of the batched hot path.
    ///
    /// The default body replays the exact per-event sequence the
    /// reference pipeline issues for each event —
    /// [`on_fetch`](Self::on_fetch), [`score`](Self::score),
    /// [`goodpath_probability`](Self::goodpath_probability), the due
    /// [`on_resolve`](Self::on_resolve) per `chunk`'s schedule, then
    /// [`tick`](Self::tick) — so every estimator is chunk-correct by
    /// construction. Implementations may override it with a faster body
    /// **only if the final state and every output stay bit-identical**;
    /// the lane-parity suites enforce this against the per-event lane.
    ///
    /// # Panics
    ///
    /// May panic if `out`'s slices are shorter than `chunk.fetch`.
    fn on_chunk(&mut self, chunk: &EstimatorChunk<'_>, out: &mut ChunkOut<'_>) {
        let n = chunk.fetch.len();
        // Pinned lengths let the `< n` indexing below skip bounds checks.
        assert!(
            chunk.mispredicted.len() == n
                && out.tokens.len() == n
                && out.scores.len() == n
                && out.probs.len() == n
                && out.has_prob.len() == n
        );
        for (j, &info) in chunk.fetch.iter().enumerate() {
            let token = self.on_fetch(info);
            out.tokens[j] = token;
            out.scores[j] = self.score().0;
            match self.goodpath_probability() {
                Some(p) => {
                    out.probs[j] = p.value().to_bits();
                    out.has_prob[j] = true;
                }
                None => {
                    out.probs[j] = 0;
                    out.has_prob[j] = false;
                }
            }
            if j >= chunk.first_resolve_event {
                let r = j - chunk.first_resolve_event;
                let (token, mispredicted) = match chunk.window_resolves.get(r) {
                    Some(&wr) => wr,
                    None => {
                        let i = r - chunk.window_resolves.len();
                        (out.tokens[i], chunk.mispredicted[i])
                    }
                };
                self.on_resolve(token, mispredicted);
            }
            self.tick(chunk.ticks);
        }
    }

    /// A short human-readable name used in experiment output.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_info_constructors() {
        let c = BranchFetchInfo::conditional(Mdc::new(3));
        assert_eq!(c.mdc, Some(Mdc::new(3)));
        let n = BranchFetchInfo::non_conditional();
        assert_eq!(n.mdc, None);
        let k = BranchFetchInfo::conditional_keyed(Mdc::new(1), 42);
        assert_eq!(k.table_key, 42);
    }

    #[test]
    fn empty_token_has_no_contribution() {
        let t = BranchToken::empty();
        assert_eq!(t.encoded_contribution(), 0);
        assert!(!t.is_low_confidence());
    }

    #[test]
    fn scores_order_naturally() {
        assert!(ConfidenceScore(0) < ConfidenceScore(10));
        assert_eq!(ConfidenceScore(5).to_string(), "5");
    }
}
