//! The full PaCo predictor: MRT + log circuit + path confidence calculator.

use crate::estimator::{ChunkOut, EstimatorChunk};
use crate::{
    fastexp, BranchFetchInfo, BranchToken, ConfidenceScore, EncodedProb, LogCircuit, LogMode,
    MispredictRateTable, PathConfidenceCalculator, PathConfidenceEstimator,
};
use paco_branch::Mdc;
use paco_types::canon::Canon;
use paco_types::Probability;

/// Configuration for a [`PacoPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacoConfig {
    /// Cycles between MRT refreshes (paper: 200 000; performance is "not
    /// very sensitive to this period").
    pub refresh_period: u64,
    /// Which log implementation the refresh circuit uses.
    pub log_mode: LogMode,
}

impl PacoConfig {
    /// The paper's configuration.
    pub const fn paper() -> Self {
        PacoConfig {
            refresh_period: 200_000,
            log_mode: LogMode::Mitchell,
        }
    }

    /// Overrides the refresh period, builder-style.
    pub const fn with_refresh_period(mut self, cycles: u64) -> Self {
        self.refresh_period = cycles;
        self
    }

    /// Overrides the log mode, builder-style.
    pub const fn with_log_mode(mut self, mode: LogMode) -> Self {
        self.log_mode = mode;
        self
    }
}

impl Canon for PacoConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x11); // type tag
        self.refresh_period.canon(out);
        self.log_mode.canon(out);
    }
}

impl Default for PacoConfig {
    fn default() -> Self {
        PacoConfig::paper()
    }
}

/// The PaCo path confidence predictor (paper §3).
///
/// Combines three pieces of hardware:
///
/// * the **Mispredict Rate Table** measuring per-MDC-bucket mispredict
///   rates with small counters,
/// * the **log circuit** that periodically converts counter ratios into
///   12-bit encoded probabilities,
/// * the **path confidence calculator**, a register summing the encoded
///   probabilities of all unresolved (conditional) branches.
///
/// Total storage: under 60 bytes of counters plus a 10-bit shift register —
/// see [`MispredictRateTable::storage_bytes`].
///
/// # Examples
///
/// ```
/// use paco::{PacoPredictor, PacoConfig, PathConfidenceEstimator, BranchFetchInfo};
/// use paco_branch::Mdc;
///
/// let mut paco = PacoPredictor::new(PacoConfig::paper());
///
/// // Warm up: bucket 0 mispredicts half the time.
/// for _ in 0..100 {
///     let t = paco.on_fetch(BranchFetchInfo::conditional(Mdc::new(0)));
///     paco.on_resolve(t, false);
///     let t = paco.on_fetch(BranchFetchInfo::conditional(Mdc::new(0)));
///     paco.on_resolve(t, true);
/// }
/// paco.tick(200_000); // trigger the periodic refresh
///
/// // Now an in-flight MDC-0 branch halves the goodpath probability.
/// let t = paco.on_fetch(BranchFetchInfo::conditional(Mdc::new(0)));
/// let p = paco.goodpath_probability().unwrap().value();
/// assert!((p - 0.5).abs() < 0.05, "p = {p}");
/// paco.on_resolve(t, false);
/// ```
#[derive(Debug, Clone)]
pub struct PacoPredictor {
    mrt: MispredictRateTable,
    calculator: PathConfidenceCalculator,
    circuit: LogCircuit,
    refresh_period: u64,
    cycles_since_refresh: u64,
    refreshes: u64,
}

impl PacoPredictor {
    /// Creates a PaCo predictor.
    pub fn new(config: PacoConfig) -> Self {
        PacoPredictor {
            mrt: MispredictRateTable::new(),
            calculator: PathConfidenceCalculator::new(),
            circuit: LogCircuit::new(config.log_mode),
            refresh_period: config.refresh_period.max(1),
            cycles_since_refresh: 0,
            refreshes: 0,
        }
    }

    /// Creates a predictor with pre-seeded MRT encodings (warm start).
    pub fn with_encodings(config: PacoConfig, encodings: [EncodedProb; Mdc::BUCKETS]) -> Self {
        let mut p = Self::new(config);
        p.mrt = MispredictRateTable::with_encodings(encodings);
        p
    }

    /// Read access to the MRT (for the static-MRT profiling flow).
    pub fn mrt(&self) -> &MispredictRateTable {
        &self.mrt
    }

    /// Number of refreshes performed so far.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Forces an immediate MRT refresh regardless of the period, restarting
    /// the period timer.
    pub fn force_refresh(&mut self) {
        self.do_refresh();
        self.cycles_since_refresh = 0;
    }

    fn do_refresh(&mut self) {
        self.mrt.refresh(self.circuit);
        self.refreshes += 1;
    }

    /// The raw encoded goodpath probability (the register value).
    pub fn encoded_confidence(&self) -> u64 {
        self.calculator.encoded_sum()
    }

    /// Number of branches currently contributing to the register.
    pub fn outstanding_branches(&self) -> u32 {
        self.calculator.outstanding()
    }
}

impl PathConfidenceEstimator for PacoPredictor {
    #[inline]
    fn on_fetch(&mut self, info: BranchFetchInfo) -> BranchToken {
        match info.mdc {
            Some(mdc) => {
                let enc = self.mrt.encoded(mdc);
                self.calculator.add(enc);
                BranchToken {
                    encoded: enc.raw(),
                    low_conf: false,
                    mdc: Some(mdc),
                    table_key: info.table_key,
                }
            }
            // JRS covers only conditional branches; other control flow
            // contributes nothing (the perlbmk blind spot, by design).
            None => BranchToken::empty(),
        }
    }

    #[inline]
    fn on_resolve(&mut self, token: BranchToken, mispredicted: bool) {
        if let Some(mdc) = token.mdc {
            self.mrt.record(mdc, mispredicted);
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
        }
    }

    #[inline]
    fn on_squash(&mut self, token: BranchToken) {
        if token.mdc.is_some() {
            // Squashed branches leave the window without training the MRT:
            // their outcome was never architecturally determined.
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
        }
    }

    #[inline]
    fn tick(&mut self, cycles: u64) {
        self.cycles_since_refresh += cycles;
        while self.cycles_since_refresh >= self.refresh_period {
            self.cycles_since_refresh -= self.refresh_period;
            self.do_refresh();
        }
    }

    #[inline]
    fn score(&self) -> ConfidenceScore {
        ConfidenceScore(self.calculator.encoded_sum())
    }

    #[inline]
    fn goodpath_probability(&self) -> Option<Probability> {
        Some(self.calculator.goodpath_probability())
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.mrt.save_state(out);
        self.calculator.save_state(out);
        paco_types::wire::write_uvarint(out, self.cycles_since_refresh);
        paco_types::wire::write_uvarint(out, self.refreshes);
    }

    fn load_state(&mut self, input: &mut &[u8]) -> bool {
        if !self.mrt.load_state(input) || !self.calculator.load_state(input) {
            return false;
        }
        let Some(cycles) = paco_types::wire::read_uvarint(input) else {
            return false;
        };
        let Some(refreshes) = paco_types::wire::read_uvarint(input) else {
            return false;
        };
        if cycles >= self.refresh_period {
            return false; // tick() never leaves a full period pending
        }
        self.cycles_since_refresh = cycles;
        self.refreshes = refreshes;
        true
    }

    /// The chunked estimator pass, PaCo-specialized. Same per-event
    /// sequence as the default body — fetch, score, probability, due
    /// resolve, tick — with the one libm call replaced: the probability
    /// decode goes through `fastexp::ProbDecoder`, which is bit-identical
    /// to [`PathConfidenceCalculator::goodpath_probability`]'s `exp2`
    /// over the whole register range (proven exhaustively in `fastexp`'s
    /// tests). The per-event reference lane keeps calling the libm
    /// spelling, so the parity suites cross-check the two on every run.
    fn on_chunk(&mut self, chunk: &EstimatorChunk<'_>, out: &mut ChunkOut<'_>) {
        let decoder = fastexp::ProbDecoder::new();
        let n = chunk.fetch.len();
        // Pinning every slice to the chunk length up front lets the
        // indexing below (always `< n`) compile without bounds checks.
        assert!(
            chunk.mispredicted.len() == n
                && out.tokens.len() == n
                && out.scores.len() == n
                && out.probs.len() == n
                && out.has_prob.len() == n
        );
        // When the whole chunk cannot reach the refresh boundary — the
        // overwhelmingly common case — the per-event tick bookkeeping
        // collapses to one addition after the loop. Otherwise fall back
        // to ticking per event so the refresh fires at its exact point.
        let per_event_tick = match (chunk.ticks)
            .checked_mul(n as u64)
            .and_then(|c| c.checked_add(self.cycles_since_refresh))
        {
            Some(total) if total < self.refresh_period => {
                self.cycles_since_refresh = total;
                false
            }
            _ => true,
        };
        for (j, &info) in chunk.fetch.iter().enumerate() {
            let token = match info.mdc {
                Some(mdc) => {
                    let enc = self.mrt.encoded(mdc);
                    self.calculator.add(enc);
                    BranchToken {
                        encoded: enc.raw(),
                        low_conf: false,
                        mdc: Some(mdc),
                        table_key: info.table_key,
                    }
                }
                None => BranchToken::empty(),
            };
            out.tokens[j] = token;
            let sum = self.calculator.encoded_sum();
            out.scores[j] = sum;
            out.probs[j] = decoder.prob_bits(sum);
            out.has_prob[j] = true;
            if j >= chunk.first_resolve_event {
                let r = j - chunk.first_resolve_event;
                let (token, mispredicted) = match chunk.window_resolves.get(r) {
                    Some(&wr) => wr,
                    None => {
                        let i = r - chunk.window_resolves.len();
                        (out.tokens[i], chunk.mispredicted[i])
                    }
                };
                if let Some(mdc) = token.mdc {
                    self.mrt.record(mdc, mispredicted);
                    self.calculator.remove(EncodedProb::from_raw(token.encoded));
                }
            }
            if per_event_tick {
                self.cycles_since_refresh += chunk.ticks;
                while self.cycles_since_refresh >= self.refresh_period {
                    self.cycles_since_refresh -= self.refresh_period;
                    self.do_refresh();
                }
            }
        }
    }

    fn name(&self) -> String {
        match self.circuit.mode() {
            LogMode::Mitchell => "PaCo".to_string(),
            LogMode::Exact => "PaCo(exact-log)".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(mdc: u8) -> BranchFetchInfo {
        BranchFetchInfo::conditional(Mdc::new(mdc))
    }

    #[test]
    fn fresh_predictor_is_certain() {
        let p = PacoPredictor::new(PacoConfig::paper());
        assert_eq!(p.score(), ConfidenceScore(0));
        assert_eq!(p.goodpath_probability().unwrap().value(), 1.0);
    }

    #[test]
    fn non_conditional_branches_do_not_contribute() {
        let mut p = PacoPredictor::new(PacoConfig::paper());
        let t = p.on_fetch(BranchFetchInfo::non_conditional());
        assert_eq!(p.score(), ConfidenceScore(0));
        p.on_resolve(t, true); // even a mispredicted indirect call
        assert_eq!(p.score(), ConfidenceScore(0));
    }

    #[test]
    fn refresh_period_drives_encodings() {
        let mut p = PacoPredictor::new(PacoConfig::paper().with_refresh_period(1000));
        // 25% mispredict rate in bucket 3.
        for i in 0..200 {
            let t = p.on_fetch(cond(3));
            p.on_resolve(t, i % 4 == 0);
        }
        assert_eq!(p.refresh_count(), 0);
        p.tick(999);
        assert_eq!(p.refresh_count(), 0);
        p.tick(1);
        assert_eq!(p.refresh_count(), 1);
        // encoded(−1024·log2(0.75)) ≈ 425.
        let t = p.on_fetch(cond(3));
        let sum = p.encoded_confidence() as i64;
        assert!((sum - 425).abs() <= 60, "sum={sum}");
        p.on_squash(t);
    }

    #[test]
    fn tick_accumulates_partial_periods() {
        let mut p = PacoPredictor::new(PacoConfig::paper().with_refresh_period(100));
        for _ in 0..9 {
            p.tick(10);
        }
        assert_eq!(p.refresh_count(), 0);
        p.tick(10);
        assert_eq!(p.refresh_count(), 1);
        p.tick(250);
        assert_eq!(p.refresh_count(), 3);
    }

    #[test]
    fn squash_restores_register_without_training() {
        let mut p = PacoPredictor::new(PacoConfig::paper().with_refresh_period(10));
        // Make bucket 0 look terrible, then refresh.
        for _ in 0..50 {
            let t = p.on_fetch(cond(0));
            p.on_resolve(t, true);
        }
        p.tick(10);
        let t1 = p.on_fetch(cond(0));
        let t2 = p.on_fetch(cond(0));
        assert!(p.score() > ConfidenceScore(0));
        let mispred_before = p.mrt().bucket(Mdc::new(0)).mispred();
        p.on_squash(t2);
        p.on_squash(t1);
        assert_eq!(p.score(), ConfidenceScore(0));
        assert_eq!(p.mrt().bucket(Mdc::new(0)).mispred(), mispred_before);
    }

    #[test]
    fn token_value_is_stable_across_refresh() {
        // A branch fetched before a refresh must subtract what it added,
        // even though the bucket encoding changed while it was in flight.
        let mut p = PacoPredictor::new(PacoConfig::paper().with_refresh_period(10));
        for _ in 0..20 {
            let t = p.on_fetch(cond(0));
            p.on_resolve(t, true); // bucket 0 = always mispredicted
        }
        let t = p.on_fetch(cond(0)); // contributes the *old* encoding (certainty)
        p.tick(10); // refresh: bucket 0 now encodes very low probability
        p.on_resolve(t, false);
        assert_eq!(
            p.score(),
            ConfidenceScore(0),
            "register must return to zero"
        );
    }

    #[test]
    fn score_tracks_goodpath_probability_monotonically() {
        let mut p = PacoPredictor::new(PacoConfig::paper().with_refresh_period(10));
        for i in 0..100 {
            let t = p.on_fetch(cond(1));
            p.on_resolve(t, i % 3 == 0);
        }
        p.tick(10);
        let mut last = 1.0;
        let mut tokens = Vec::new();
        for _ in 0..5 {
            tokens.push(p.on_fetch(cond(1)));
            let prob = p.goodpath_probability().unwrap().value();
            assert!(prob < last, "probability must fall with each branch");
            last = prob;
        }
        for t in tokens {
            p.on_squash(t);
        }
    }

    #[test]
    fn snapshot_resumes_bit_identically() {
        let mut p = PacoPredictor::new(PacoConfig::paper().with_refresh_period(500));
        for i in 0..300u64 {
            let t = p.on_fetch(cond((i % 16) as u8));
            p.tick(3);
            p.on_resolve(t, i % 5 == 0);
        }
        let in_flight = p.on_fetch(cond(2));

        let mut blob = Vec::new();
        p.save_state(&mut blob);
        let mut q = PacoPredictor::new(PacoConfig::paper().with_refresh_period(500));
        let mut input = blob.as_slice();
        assert!(q.load_state(&mut input));
        assert!(input.is_empty(), "restore must consume the whole blob");

        assert_eq!(q.score(), p.score());
        assert_eq!(q.refresh_count(), p.refresh_count());
        // Drive both through the same future: resolve, then cross a
        // refresh boundary. Every observable must stay in lockstep.
        for est in [&mut p, &mut q] {
            est.on_resolve(in_flight, true);
            est.tick(600);
        }
        assert_eq!(q.refresh_count(), p.refresh_count());
        assert_eq!(q.mrt().encodings(), p.mrt().encodings());
        let t1 = p.on_fetch(cond(7));
        let t2 = q.on_fetch(cond(7));
        assert_eq!(p.score(), q.score());
        p.on_squash(t1);
        q.on_squash(t2);
    }

    #[test]
    fn snapshot_restore_rejects_garbage() {
        let p = PacoPredictor::new(PacoConfig::paper());
        let mut blob = Vec::new();
        p.save_state(&mut blob);
        // Truncation.
        let mut q = PacoPredictor::new(PacoConfig::paper());
        assert!(!q.load_state(&mut &blob[..blob.len() - 1]));
        // A pending-cycles value at or past the refresh period is
        // inconsistent with tick()'s invariant.
        let mut bad = Vec::new();
        let mut short = PacoPredictor::new(PacoConfig::paper().with_refresh_period(2));
        short.tick(1);
        short.save_state(&mut bad);
        let mut q = PacoPredictor::new(PacoConfig::paper().with_refresh_period(1));
        assert!(!q.load_state(&mut bad.as_slice()));
    }

    #[test]
    fn chunk_override_matches_per_event_sequence() {
        // Drive the specialized on_chunk and a manual replay of the
        // per-event reference sequence through the same schedule —
        // warm MRT, refresh crossings mid-chunk, window resolves and
        // in-chunk self-resolves — and require bit-identical outputs
        // and state.
        let config = PacoConfig::paper().with_refresh_period(37);
        let mut chunked = PacoPredictor::new(config);
        let mut reference = PacoPredictor::new(config);
        for est in [&mut chunked, &mut reference] {
            for i in 0..200u64 {
                let t = est.on_fetch(cond((i % 16) as u8));
                est.on_resolve(t, i % 3 == 0);
                est.tick(1);
            }
        }

        let n = 16usize;
        let fetch: Vec<BranchFetchInfo> = (0..n)
            .map(|j| {
                if j % 5 == 4 {
                    BranchFetchInfo::non_conditional()
                } else {
                    BranchFetchInfo::conditional_keyed(Mdc::new((j % 16) as u8), j as u64)
                }
            })
            .collect();
        let mispredicted: Vec<bool> = (0..n).map(|j| j % 4 == 1 && j % 5 != 4).collect();
        let window_resolves: Vec<(BranchToken, bool)> = (0..3)
            .map(|i| (chunked.on_fetch(cond(i as u8)), i == 1))
            .collect();
        // Mirror the window fetches on the reference predictor.
        let ref_window: Vec<(BranchToken, bool)> = (0..3)
            .map(|i| (reference.on_fetch(cond(i as u8)), i == 1))
            .collect();
        let first_resolve_event = 2usize;
        let ticks = 5u64;

        let mut tokens = vec![BranchToken::empty(); n];
        let mut scores = vec![0u64; n];
        let mut probs = vec![0u64; n];
        let mut has_prob = vec![false; n];
        chunked.on_chunk(
            &EstimatorChunk {
                fetch: &fetch,
                mispredicted: &mispredicted,
                window_resolves: &window_resolves,
                first_resolve_event,
                ticks,
            },
            &mut ChunkOut {
                tokens: &mut tokens,
                scores: &mut scores,
                probs: &mut probs,
                has_prob: &mut has_prob,
            },
        );

        // The reference sequence, spelled out per event.
        let mut ref_tokens = Vec::new();
        for (j, &info) in fetch.iter().enumerate() {
            let t = reference.on_fetch(info);
            ref_tokens.push(t);
            assert_eq!(tokens[j], t, "token {j}");
            assert_eq!(scores[j], reference.score().0, "score {j}");
            assert_eq!(
                probs[j],
                reference.goodpath_probability().unwrap().value().to_bits(),
                "prob bits {j}"
            );
            assert!(has_prob[j]);
            if j >= first_resolve_event {
                let r = j - first_resolve_event;
                let (t, mis) = if r < ref_window.len() {
                    ref_window[r]
                } else {
                    let i = r - ref_window.len();
                    (ref_tokens[i], mispredicted[i])
                };
                reference.on_resolve(t, mis);
            }
            reference.tick(ticks);
        }

        let (mut a, mut b) = (Vec::new(), Vec::new());
        chunked.save_state(&mut a);
        reference.save_state(&mut b);
        assert_eq!(a, b, "final predictor state must be bit-identical");
        assert_eq!(chunked.refresh_count(), reference.refresh_count());
    }

    #[test]
    fn name_reflects_log_mode() {
        assert_eq!(PacoPredictor::new(PacoConfig::paper()).name(), "PaCo");
        assert_eq!(
            PacoPredictor::new(PacoConfig::paper().with_log_mode(LogMode::Exact)).name(),
            "PaCo(exact-log)"
        );
    }
}
