//! PaCo: probability-based path confidence prediction.
//!
//! This crate implements the paper's primary contribution. A *path
//! confidence* estimate is the probability that the processor front end is
//! currently fetching instructions that will eventually retire (the
//! "goodpath"). Under a branch-independence assumption this is the product
//! of the correct-prediction probabilities of every unresolved branch
//! (paper Eq. 1):
//!
//! ```text
//! P(goodpath) = ∏ₖ P(branch k correctly predicted)
//! ```
//!
//! PaCo works in the log domain so the hardware needs only integer
//! addition/subtraction (Eqs. 2–3): every branch contributes an *encoded
//! probability* `⌈−1024·log₂ P(correct)⌉`, clamped to 2¹², and the path
//! confidence register is the running **sum** of the encoded probabilities
//! of the unresolved branches. Per-MDC-bucket correct/mispredict counters
//! (the Mispredict Rate Table) are converted to encodings every 200 000
//! cycles by a Mitchell binary-log circuit.
//!
//! The crate also provides the baselines the paper compares against:
//! the conventional **threshold-and-count** predictor, and the Appendix-A
//! ablations (**static MRT** and **per-branch MRT**).
//!
//! # Examples
//!
//! ```
//! use paco::{PacoPredictor, PacoConfig, PathConfidenceEstimator, BranchFetchInfo};
//! use paco_branch::Mdc;
//!
//! let mut paco = PacoPredictor::new(PacoConfig::paper());
//! // A branch with MDC value 0 (just mispredicted) is fetched:
//! let token = paco.on_fetch(BranchFetchInfo::conditional(Mdc::new(0)));
//! // The predictor's goodpath probability is well defined (PaCo's whole
//! // point) and returns to certainty once the branch resolves:
//! assert!(paco.goodpath_probability().unwrap().value() <= 1.0);
//! paco.on_resolve(token, false);
//! assert_eq!(paco.goodpath_probability().unwrap().value(), 1.0);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod calculator;
mod encoded;
mod estimator;
mod fastexp;
mod log_circuit;
mod mrt;
mod paco_predictor;
mod threshold_count;
mod variants;

pub use adaptive::{AdaptiveMrtConfig, AdaptiveMrtPredictor};
pub use calculator::PathConfidenceCalculator;
pub use encoded::EncodedProb;
pub use estimator::{
    BranchFetchInfo, BranchToken, ChunkOut, ConfidenceScore, EstimatorChunk,
    PathConfidenceEstimator,
};
pub use log_circuit::{LogCircuit, LogMode};
pub use mrt::{MispredictRateTable, MrtBucket};
pub use paco_predictor::{PacoConfig, PacoPredictor};
pub use threshold_count::{ThresholdCountConfig, ThresholdCountPredictor};
pub use variants::{PerBranchMrtConfig, PerBranchMrtPredictor, StaticMrtPredictor};
