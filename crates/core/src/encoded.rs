//! Encoded probabilities — the integer log-domain representation PaCo
//! computes with (paper Eq. 3).

use paco_types::Probability;

/// An encoded correct-prediction (or goodpath) probability:
/// `⌈−1024 · log₂(p)⌉`, saturated at 2¹² = 4096.
///
/// * `EncodedProb(0)` encodes probability 1 (certainty);
/// * larger values encode smaller probabilities;
/// * the saturation point 4096 encodes p = 2⁻⁴ = 6.25% (a branch with a
///   mispredict rate above 93.75%, which the paper notes never occurs in
///   SPEC2000int).
///
/// Encoded probabilities of independent events **add** where the underlying
/// probabilities would multiply, which is the whole point: the hardware
/// path-confidence register is a running sum.
///
/// # Examples
///
/// ```
/// use paco::EncodedProb;
/// use paco_types::Probability;
///
/// let half = EncodedProb::from_probability(Probability::new(0.5)?);
/// assert_eq!(half.raw(), 1024); // −1024·log2(0.5)
///
/// let quarter = half.saturating_add(half);
/// assert!((quarter.to_probability().value() - 0.25).abs() < 1e-9);
/// # Ok::<(), paco_types::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EncodedProb(u32);

impl EncodedProb {
    /// The fixed-point scale: one unit is 1/1024 of a bit (paper Eq. 3).
    pub const SCALE: u32 = 1024;

    /// The saturation value 2¹²; encodes p = 2⁻⁴.
    pub const SATURATION: u32 = 4096;

    /// Certainty: probability 1 encodes to 0.
    pub const CERTAIN: EncodedProb = EncodedProb(0);

    /// The saturated (least confident) encoding.
    pub const MAX: EncodedProb = EncodedProb(Self::SATURATION);

    /// Creates an encoded probability from a raw fixed-point value,
    /// saturating at [`Self::SATURATION`].
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        if raw > Self::SATURATION {
            EncodedProb(Self::SATURATION)
        } else {
            EncodedProb(raw)
        }
    }

    /// The raw fixed-point value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Encodes a real probability: `⌈−1024·log₂(p)⌉`, saturated.
    ///
    /// This is the *configuration-time* conversion — the paper converts the
    /// architect's target gating probability into the encoded domain once,
    /// so the hot path never needs logarithms.
    pub fn from_probability(p: Probability) -> Self {
        let v = p.value();
        if v <= 0.0 {
            return Self::MAX;
        }
        let raw = (-(Self::SCALE as f64) * v.log2()).ceil();
        if raw <= 0.0 {
            Self::CERTAIN
        } else if raw >= Self::SATURATION as f64 {
            Self::MAX
        } else {
            EncodedProb(raw as u32)
        }
    }

    /// Decodes to a real probability: `2^(−raw/1024)`.
    ///
    /// Only used at reporting boundaries; the hardware never performs this
    /// conversion.
    pub fn to_probability(self) -> Probability {
        Probability::clamped((-(self.0 as f64) / Self::SCALE as f64).exp2())
    }

    /// Adds two encoded probabilities (probabilities multiply), saturating.
    #[inline]
    pub fn saturating_add(self, other: EncodedProb) -> EncodedProb {
        EncodedProb::from_raw(self.0.saturating_add(other.0))
    }

    /// Whether the encoding is saturated (probability indistinguishable
    /// from the ≤ 2⁻⁴ floor).
    #[inline]
    pub const fn is_saturated(self) -> bool {
        self.0 >= Self::SATURATION
    }
}

impl std::fmt::Display for EncodedProb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn certainty_encodes_to_zero() {
        assert_eq!(EncodedProb::from_probability(p(1.0)), EncodedProb::CERTAIN);
    }

    #[test]
    fn half_encodes_to_1024() {
        assert_eq!(EncodedProb::from_probability(p(0.5)).raw(), 1024);
    }

    #[test]
    fn paper_example_ten_percent_is_3321() {
        // Paper §3.2: "PaCo would convert 10% into an encoded probability
        // (which happens to be 3321)".
        // −1024·log2(0.1) = 3401.6… The paper's 3321 corresponds to
        // log2 10 ≈ 3.3219 scaled by 1000; with the stated −1024 scale the
        // value is 3402. We implement the stated equation and verify the
        // decode matches 10% closely.
        let enc = EncodedProb::from_probability(p(0.10));
        assert_eq!(enc.raw(), 3402);
        assert!((enc.to_probability().value() - 0.10).abs() < 1e-3);
    }

    #[test]
    fn saturation_at_4096() {
        assert_eq!(EncodedProb::from_probability(p(0.0)), EncodedProb::MAX);
        assert_eq!(EncodedProb::from_raw(9999), EncodedProb::MAX);
        assert!(EncodedProb::MAX.is_saturated());
        // Saturation decodes to 2^-4.
        assert!((EncodedProb::MAX.to_probability().value() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn round_trip_error_is_small() {
        for &v in &[0.9, 0.75, 0.5, 0.3, 0.11, 0.0701] {
            let enc = EncodedProb::from_probability(p(v));
            let back = enc.to_probability().value();
            // Ceil rounding loses at most 1/1024 of a bit.
            assert!((back - v).abs() / v < 1e-3, "v={v} back={back}");
        }
    }

    #[test]
    fn addition_is_multiplication() {
        let a = EncodedProb::from_probability(p(0.5));
        let b = EncodedProb::from_probability(p(0.25));
        let sum = a.saturating_add(b);
        assert!((sum.to_probability().value() - 0.125).abs() < 1e-6);
    }

    #[test]
    fn add_saturates() {
        let m = EncodedProb::MAX;
        assert_eq!(m.saturating_add(m), EncodedProb::MAX);
    }

    #[test]
    fn ordering_is_reverse_of_probability() {
        // Larger encoded value = less likely.
        let a = EncodedProb::from_probability(p(0.9));
        let b = EncodedProb::from_probability(p(0.2));
        assert!(a < b);
        assert!(a.to_probability() > b.to_probability());
    }
}
