//! The conventional threshold-and-count path confidence predictor.

use crate::{BranchFetchInfo, BranchToken, ConfidenceScore, PathConfidenceEstimator};
use paco_types::canon::Canon;

/// Configuration for a [`ThresholdCountPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdCountConfig {
    /// Branches with MDC value **below** this threshold are classified
    /// low-confidence. The paper sweeps thresholds {3, 7, 11, 15} and notes
    /// 3 is usually best.
    pub threshold: u8,
}

impl ThresholdCountConfig {
    /// The conventional threshold of 3 ("a good threshold … indicated by
    /// our experiments and previous research").
    pub const fn paper_default() -> Self {
        ThresholdCountConfig { threshold: 3 }
    }

    /// An arbitrary threshold.
    pub const fn with_threshold(threshold: u8) -> Self {
        ThresholdCountConfig { threshold }
    }
}

impl Default for ThresholdCountConfig {
    fn default() -> Self {
        ThresholdCountConfig::paper_default()
    }
}

impl Canon for ThresholdCountConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x12); // type tag
        self.threshold.canon(out);
    }
}

/// The conventional path confidence predictor (paper Fig. 1): a counter of
/// unresolved low-confidence branches.
///
/// A thresholding function collapses each branch's 4-bit MDC value into a
/// single high/low-confidence bit; the count of unresolved low-confidence
/// branches serves as the (inverse) path confidence estimate. The paper's
/// critique: this implicitly assumes all low-confidence branches share one
/// mispredict rate and high-confidence branches never mispredict, so the
/// counter value does not correspond to any particular goodpath
/// probability — hence [`goodpath_probability`] returns `None`.
///
/// [`goodpath_probability`]: PathConfidenceEstimator::goodpath_probability
///
/// # Examples
///
/// ```
/// use paco::{ThresholdCountPredictor, ThresholdCountConfig,
///            PathConfidenceEstimator, BranchFetchInfo, ConfidenceScore};
/// use paco_branch::Mdc;
///
/// let mut pred = ThresholdCountPredictor::new(ThresholdCountConfig::paper_default());
/// let low = pred.on_fetch(BranchFetchInfo::conditional(Mdc::new(1)));
/// let high = pred.on_fetch(BranchFetchInfo::conditional(Mdc::new(9)));
/// assert_eq!(pred.score(), ConfidenceScore(1)); // only the MDC-1 branch counts
/// pred.on_resolve(low, false);
/// pred.on_resolve(high, false);
/// assert_eq!(pred.score(), ConfidenceScore(0));
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdCountPredictor {
    threshold: u8,
    low_conf_outstanding: u32,
}

impl ThresholdCountPredictor {
    /// Creates a threshold-and-count predictor.
    pub fn new(config: ThresholdCountConfig) -> Self {
        ThresholdCountPredictor {
            threshold: config.threshold,
            low_conf_outstanding: 0,
        }
    }

    /// The configured JRS threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// The current count of unresolved low-confidence branches.
    pub fn low_confidence_count(&self) -> u32 {
        self.low_conf_outstanding
    }
}

impl PathConfidenceEstimator for ThresholdCountPredictor {
    #[inline]
    fn on_fetch(&mut self, info: BranchFetchInfo) -> BranchToken {
        match info.mdc {
            Some(mdc) if !mdc.is_high_confidence(self.threshold) => {
                self.low_conf_outstanding += 1;
                BranchToken {
                    encoded: 0,
                    low_conf: true,
                    mdc: Some(mdc),
                    table_key: info.table_key,
                }
            }
            Some(mdc) => BranchToken {
                encoded: 0,
                low_conf: false,
                mdc: Some(mdc),
                table_key: info.table_key,
            },
            None => BranchToken::empty(),
        }
    }

    #[inline]
    fn on_resolve(&mut self, token: BranchToken, _mispredicted: bool) {
        if token.low_conf {
            debug_assert!(self.low_conf_outstanding > 0, "counter underflow");
            self.low_conf_outstanding = self.low_conf_outstanding.saturating_sub(1);
        }
    }

    #[inline]
    fn on_squash(&mut self, token: BranchToken) {
        if token.low_conf {
            debug_assert!(self.low_conf_outstanding > 0, "counter underflow");
            self.low_conf_outstanding = self.low_conf_outstanding.saturating_sub(1);
        }
    }

    #[inline]
    fn score(&self) -> ConfidenceScore {
        ConfidenceScore(self.low_conf_outstanding as u64)
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        paco_types::wire::write_uvarint(out, self.low_conf_outstanding as u64);
    }

    fn load_state(&mut self, input: &mut &[u8]) -> bool {
        match paco_types::wire::read_uvarint(input).and_then(|v| v.try_into().ok()) {
            Some(count) => {
                self.low_conf_outstanding = count;
                true
            }
            None => false,
        }
    }

    fn name(&self) -> String {
        format!("JRS-t{}", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_branch::Mdc;

    fn cond(mdc: u8) -> BranchFetchInfo {
        BranchFetchInfo::conditional(Mdc::new(mdc))
    }

    #[test]
    fn counts_only_low_confidence_branches() {
        let mut p = ThresholdCountPredictor::new(ThresholdCountConfig::with_threshold(3));
        let t0 = p.on_fetch(cond(0));
        let t2 = p.on_fetch(cond(2));
        let t3 = p.on_fetch(cond(3));
        let t15 = p.on_fetch(cond(15));
        assert_eq!(p.score(), ConfidenceScore(2));
        p.on_resolve(t0, true);
        p.on_resolve(t2, false);
        p.on_resolve(t3, false);
        p.on_resolve(t15, false);
        assert_eq!(p.score(), ConfidenceScore(0));
    }

    #[test]
    fn squash_decrements() {
        let mut p = ThresholdCountPredictor::new(ThresholdCountConfig::paper_default());
        let t = p.on_fetch(cond(0));
        assert_eq!(p.score(), ConfidenceScore(1));
        p.on_squash(t);
        assert_eq!(p.score(), ConfidenceScore(0));
    }

    #[test]
    fn non_conditional_ignored() {
        let mut p = ThresholdCountPredictor::new(ThresholdCountConfig::paper_default());
        let t = p.on_fetch(BranchFetchInfo::non_conditional());
        assert_eq!(p.score(), ConfidenceScore(0));
        p.on_resolve(t, true);
        assert_eq!(p.score(), ConfidenceScore(0));
    }

    #[test]
    fn threshold_15_counts_almost_everything() {
        let mut p = ThresholdCountPredictor::new(ThresholdCountConfig::with_threshold(15));
        let a = p.on_fetch(cond(14));
        let b = p.on_fetch(cond(15));
        assert_eq!(p.score(), ConfidenceScore(1)); // only MDC 15 is "high"
        p.on_squash(a);
        p.on_squash(b);
    }

    #[test]
    fn no_probability_estimate() {
        let p = ThresholdCountPredictor::new(ThresholdCountConfig::paper_default());
        assert!(p.goodpath_probability().is_none());
    }

    #[test]
    fn name_includes_threshold() {
        let p = ThresholdCountPredictor::new(ThresholdCountConfig::with_threshold(7));
        assert_eq!(p.name(), "JRS-t7");
    }
}
