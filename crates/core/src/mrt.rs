//! The Mispredict Rate Table (MRT).
//!
//! One bucket per MDC value. Each bucket holds a 10-bit counter of correct
//! predictions and a 6-bit counter of mispredictions (paper Fig. 5).
//! When either counter overflows, **both are halved**, preserving the
//! bucket's mispredict rate while aging old history. Periodically the log
//! circuit converts each bucket's ratio to an encoded probability and the
//! counters are reset.

use crate::{EncodedProb, LogCircuit};
use paco_branch::Mdc;

/// One MRT bucket: correct/mispredict counters for an MDC value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MrtBucket {
    correct: u32,
    mispred: u32,
}

impl MrtBucket {
    /// Capacity of the 10-bit correct-prediction counter.
    pub const CORRECT_MAX: u32 = (1 << 10) - 1;
    /// Capacity of the 6-bit misprediction counter.
    pub const MISPRED_MAX: u32 = (1 << 6) - 1;

    /// Records one resolved branch; halves both counters on overflow,
    /// preserving the rate (paper §3.2).
    pub fn record(&mut self, mispredicted: bool) {
        if mispredicted {
            if self.mispred == Self::MISPRED_MAX {
                self.halve();
            }
            self.mispred += 1;
        } else {
            if self.correct == Self::CORRECT_MAX {
                self.halve();
            }
            self.correct += 1;
        }
    }

    fn halve(&mut self) {
        self.correct /= 2;
        self.mispred /= 2;
    }

    /// Correct-prediction count.
    pub const fn correct(&self) -> u32 {
        self.correct
    }

    /// Misprediction count.
    pub const fn mispred(&self) -> u32 {
        self.mispred
    }

    /// Total observations.
    pub const fn total(&self) -> u32 {
        self.correct + self.mispred
    }

    /// Whether the bucket saw no branches since the last reset.
    pub const fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Resets both counters (done after each periodic refresh).
    pub fn reset(&mut self) {
        self.correct = 0;
        self.mispred = 0;
    }

    /// Appends the bucket's counters (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        paco_types::wire::write_uvarint(out, self.correct as u64);
        paco_types::wire::write_uvarint(out, self.mispred as u64);
    }

    /// Restores counters saved by [`save_state`](Self::save_state);
    /// `false` on truncation or values beyond the hardware counter
    /// capacities.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        let Some(correct) = paco_types::wire::read_uvarint(input) else {
            return false;
        };
        let Some(mispred) = paco_types::wire::read_uvarint(input) else {
            return false;
        };
        if correct > Self::CORRECT_MAX as u64 || mispred > Self::MISPRED_MAX as u64 {
            return false;
        }
        self.correct = correct as u32;
        self.mispred = mispred as u32;
        true
    }
}

/// The full Mispredict Rate Table: one [`MrtBucket`] per MDC value plus the
/// latched encoded probabilities produced at the last refresh.
///
/// # Examples
///
/// ```
/// use paco::{MispredictRateTable, LogCircuit, LogMode};
/// use paco_branch::Mdc;
///
/// let mut mrt = MispredictRateTable::new();
/// // Bucket 0 sees a 50% mispredict rate:
/// for _ in 0..100 {
///     mrt.record(Mdc::new(0), false);
///     mrt.record(Mdc::new(0), true);
/// }
/// mrt.refresh(LogCircuit::new(LogMode::Exact));
/// let enc = mrt.encoded(Mdc::new(0));
/// assert!((enc.raw() as i64 - 1024).abs() <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct MispredictRateTable {
    buckets: [MrtBucket; Mdc::BUCKETS],
    encodings: [EncodedProb; Mdc::BUCKETS],
}

impl MispredictRateTable {
    /// Creates an MRT with empty counters and optimistic (certainty)
    /// initial encodings; the first refresh installs measured values.
    pub fn new() -> Self {
        MispredictRateTable {
            buckets: [MrtBucket::default(); Mdc::BUCKETS],
            encodings: [EncodedProb::CERTAIN; Mdc::BUCKETS],
        }
    }

    /// Creates an MRT pre-seeded with the given encodings (used by tests
    /// and by warm-started experiments).
    pub fn with_encodings(encodings: [EncodedProb; Mdc::BUCKETS]) -> Self {
        MispredictRateTable {
            buckets: [MrtBucket::default(); Mdc::BUCKETS],
            encodings,
        }
    }

    /// Records an executed branch's outcome into its MDC bucket.
    #[inline]
    pub fn record(&mut self, mdc: Mdc, mispredicted: bool) {
        self.buckets[mdc.bucket()].record(mispredicted);
    }

    /// Runs the periodic logarithmize-and-scale pass: converts every
    /// non-empty bucket's ratio to an encoded probability, then resets the
    /// counters. Buckets that saw no branches keep their previous encoding.
    pub fn refresh(&mut self, circuit: LogCircuit) {
        for (bucket, enc) in self.buckets.iter_mut().zip(self.encodings.iter_mut()) {
            if !bucket.is_empty() {
                *enc = circuit.encode_ratio(bucket.correct(), bucket.mispred());
                bucket.reset();
            }
        }
    }

    /// Like [`refresh`](Self::refresh) but passes each non-empty
    /// bucket's freshly measured encoding through `map` (with its bucket
    /// index) before latching it — the adaptive variant's blend hook.
    /// Empty buckets keep their previous encoding, exactly as in
    /// `refresh`.
    pub fn refresh_map(
        &mut self,
        circuit: LogCircuit,
        mut map: impl FnMut(usize, EncodedProb) -> EncodedProb,
    ) {
        for (i, (bucket, enc)) in self
            .buckets
            .iter_mut()
            .zip(self.encodings.iter_mut())
            .enumerate()
        {
            if !bucket.is_empty() {
                *enc = map(i, circuit.encode_ratio(bucket.correct(), bucket.mispred()));
                bucket.reset();
            }
        }
    }

    /// Resets every bucket's counters **without** latching new encodings.
    /// The adaptive variant uses this to discard a measurement window
    /// contaminated by a regime change before re-measuring from scratch.
    pub fn reset_counters(&mut self) {
        for bucket in &mut self.buckets {
            bucket.reset();
        }
    }

    /// The latched encoded probability for an MDC value.
    #[inline]
    pub fn encoded(&self, mdc: Mdc) -> EncodedProb {
        self.encodings[mdc.bucket()]
    }

    /// All latched encodings (for inspection / the static-MRT profile dump).
    pub fn encodings(&self) -> &[EncodedProb; Mdc::BUCKETS] {
        &self.encodings
    }

    /// Read access to a bucket's raw counters.
    pub fn bucket(&self, mdc: Mdc) -> &MrtBucket {
        &self.buckets[mdc.bucket()]
    }

    /// Hardware storage estimate in bytes: 16 × (10 + 6) bits of counters
    /// plus 16 × 12 bits of encodings — the paper's "less than 60 bytes".
    pub fn storage_bytes() -> usize {
        (Mdc::BUCKETS * (10 + 6) + Mdc::BUCKETS * 12) / 8
    }

    /// Appends the full table state — counters and latched encodings —
    /// (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        for bucket in &self.buckets {
            bucket.save_state(out);
        }
        for enc in &self.encodings {
            paco_types::wire::write_uvarint(out, enc.raw() as u64);
        }
    }

    /// Restores state saved by [`save_state`](Self::save_state); `false`
    /// on truncation or out-of-range values.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        for bucket in &mut self.buckets {
            if !bucket.load_state(input) {
                return false;
            }
        }
        for enc in &mut self.encodings {
            let Some(raw) = paco_types::wire::read_uvarint(input) else {
                return false;
            };
            if raw > EncodedProb::SATURATION as u64 {
                return false;
            }
            *enc = EncodedProb::from_raw(raw as u32);
        }
        true
    }
}

impl Default for MispredictRateTable {
    fn default() -> Self {
        MispredictRateTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogMode;

    #[test]
    fn bucket_counts_and_rates() {
        let mut b = MrtBucket::default();
        for _ in 0..30 {
            b.record(false);
        }
        for _ in 0..10 {
            b.record(true);
        }
        assert_eq!(b.correct(), 30);
        assert_eq!(b.mispred(), 10);
        assert_eq!(b.total(), 40);
    }

    #[test]
    fn overflow_halves_both_counters_preserving_rate() {
        let mut b = MrtBucket::default();
        // Drive the 6-bit mispredict counter to overflow with a 3:1 ratio.
        for _ in 0..189 {
            b.record(false);
        }
        for _ in 0..63 {
            b.record(true);
        }
        assert_eq!(b.mispred(), 63);
        let rate_before = b.mispred() as f64 / b.total() as f64;
        b.record(true); // overflow → halve, then count
        let rate_after = b.mispred() as f64 / b.total() as f64;
        assert!(b.mispred() <= 32);
        assert!((rate_before - rate_after).abs() < 0.02);
    }

    #[test]
    fn correct_counter_overflow_halves() {
        let mut b = MrtBucket::default();
        for _ in 0..MrtBucket::CORRECT_MAX {
            b.record(false);
        }
        b.record(true);
        b.record(false); // hits CORRECT_MAX again? No: still below.
        assert!(b.correct() <= MrtBucket::CORRECT_MAX);
        // Force the halving path.
        let mut b2 = MrtBucket::default();
        for _ in 0..=MrtBucket::CORRECT_MAX {
            b2.record(false);
        }
        assert_eq!(b2.correct(), MrtBucket::CORRECT_MAX / 2 + 1);
    }

    #[test]
    fn refresh_latches_and_resets() {
        let mut mrt = MispredictRateTable::new();
        for _ in 0..90 {
            mrt.record(Mdc::new(2), false);
        }
        for _ in 0..10 {
            mrt.record(Mdc::new(2), true);
        }
        mrt.refresh(LogCircuit::new(LogMode::Exact));
        // ~10% mispredict → −1024·log2(0.9) ≈ 156.
        let enc = mrt.encoded(Mdc::new(2)).raw() as i64;
        assert!((enc - 156).abs() <= 4, "enc={enc}");
        assert!(mrt.bucket(Mdc::new(2)).is_empty());
    }

    #[test]
    fn empty_bucket_keeps_previous_encoding() {
        let mut mrt = MispredictRateTable::new();
        for _ in 0..50 {
            mrt.record(Mdc::new(1), true);
        }
        mrt.refresh(LogCircuit::new(LogMode::Exact));
        let first = mrt.encoded(Mdc::new(1));
        assert_eq!(first, EncodedProb::MAX);
        // Second period: bucket 1 sees nothing; encoding must persist.
        mrt.refresh(LogCircuit::new(LogMode::Exact));
        assert_eq!(mrt.encoded(Mdc::new(1)), first);
    }

    #[test]
    fn storage_is_under_60_bytes() {
        assert!(MispredictRateTable::storage_bytes() <= 60);
    }

    #[test]
    fn fresh_table_encodes_certainty() {
        let mrt = MispredictRateTable::new();
        for i in 0..16 {
            assert_eq!(mrt.encoded(Mdc::new(i)), EncodedProb::CERTAIN);
        }
    }
}
