//! Bit-exact table-driven decode of the confidence register.
//!
//! The chunked estimator pass decodes `2^(−sum/1024)` once per event.
//! The scalar reference lane spells that as a libm `exp2` call
//! ([`PathConfidenceCalculator::goodpath_probability`]
//! (crate::PathConfidenceCalculator::goodpath_probability)), which
//! dominates the batched PaCo hot loop. This module replaces the call
//! with a 1024-entry fraction table and an exact power-of-two exponent
//! adjustment — **bit-identical** to the libm spelling over the entire
//! domain the fast path accepts, which is the property every
//! lane-parity digest in the workspace rests on.
//!
//! Why the identity holds: write `sum = 1024·k + f` with `f < 1024`.
//! Then `2^(−sum/1024) = 2^(−k) · 2^(−f/1024)`. Both `−f/1024` and
//! `−sum/1024` are exact in f64 (the numerators are < 2⁵³ and the
//! divisor is a power of two), glibc's `exp2` reduces its argument to
//! the same fractional remainder for both inputs (the integer parts
//! differ by exactly `k`), and the final scaling by `2^(−k)` is an
//! exact exponent-field adjustment while the result stays normal. The
//! unit tests pin the identity exhaustively over every reachable
//! fraction and a deep sweep of the reachable register range; sums
//! outside [`FAST_LIMIT`] (beyond any reachable register value, and
//! approaching the subnormal range where exponent adjustment stops
//! being exact) fall back to the libm spelling itself.

use std::sync::OnceLock;

use crate::EncodedProb;

/// Sums at or above this decode through libm directly. The largest
/// reachable register value is `outstanding × 4096` with `outstanding`
/// bounded by the in-flight window (≤ 2¹² + 1 entries), about 2²⁴ —
/// far below this guard, which itself stays clear of the subnormal
/// boundary near `1021 × 1024`.
const FAST_LIMIT: u64 = 1_000_000;

/// The libm spelling the fast path must match bit-for-bit: exactly the
/// arithmetic of `PathConfidenceCalculator::goodpath_probability`.
#[inline]
pub(crate) fn prob_bits_libm(sum: u64) -> u64 {
    (-(sum as f64) / EncodedProb::SCALE as f64).exp2().to_bits()
}

/// `exp2(−f/1024)` for every fraction `f`, computed by libm once so the
/// table cannot drift from the scalar spelling.
fn frac_table() -> &'static [f64; 1024] {
    static TABLE: OnceLock<[f64; 1024]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f64; 1024];
        for (f, slot) in t.iter_mut().enumerate() {
            *slot = (-(f as f64) / 1024.0).exp2();
        }
        t
    })
}

/// A handle over the fraction table, resolved once per chunk so the
/// per-event decode is two loads and a multiply (no `OnceLock` check in
/// the loop).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbDecoder {
    frac: &'static [f64; 1024],
}

impl ProbDecoder {
    /// Resolves (initializing on first use) the fraction table.
    pub(crate) fn new() -> Self {
        ProbDecoder { frac: frac_table() }
    }

    /// The IEEE-754 bits of `2^(−sum/1024)`, bit-identical to
    /// [`prob_bits_libm`] for every `sum`.
    #[inline]
    pub(crate) fn prob_bits(&self, sum: u64) -> u64 {
        if sum >= FAST_LIMIT {
            return prob_bits_libm(sum);
        }
        let k = sum >> 10;
        let f = (sum & 1023) as usize;
        // 2^(−k) as an exact f64: exponent field 1023 − k, k < 977 here.
        let scale = f64::from_bits((1023 - k) << 52);
        (self.frac[f] * scale).to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_exhaustively_over_low_registers() {
        // Every (fraction, small exponent) pair — covers every table
        // entry against every scaling the paper configuration can
        // produce in a full window of saturated branches.
        let d = ProbDecoder::new();
        for sum in 0..64 * 1024u64 {
            assert_eq!(d.prob_bits(sum), prob_bits_libm(sum), "sum={sum}");
        }
    }

    #[test]
    fn matches_libm_across_the_reachable_range() {
        // Stride an odd step through the full reachable register range
        // (4097 in-flight branches × 4096 max encoding) so every
        // fraction recurs under many different exponents.
        let d = ProbDecoder::new();
        let max = 4097u64 * 4096;
        let mut sum = 0u64;
        while sum <= max {
            assert_eq!(d.prob_bits(sum), prob_bits_libm(sum), "sum={sum}");
            sum += 977;
        }
    }

    #[test]
    fn guard_band_falls_back_to_libm() {
        let d = ProbDecoder::new();
        for sum in [FAST_LIMIT - 1, FAST_LIMIT, FAST_LIMIT + 1, u64::MAX >> 1] {
            assert_eq!(d.prob_bits(sum), prob_bits_libm(sum), "sum={sum}");
        }
    }

    #[test]
    fn certainty_decodes_to_one() {
        assert_eq!(ProbDecoder::new().prob_bits(0), 1.0f64.to_bits());
    }

    #[test]
    fn matches_the_shared_probability_spelling() {
        // prob_bits_libm is pinned to the exact arithmetic of the
        // scalar lane's goodpath_probability (including its clamp,
        // which is the identity on exp2's [0, 1] range).
        let d = ProbDecoder::new();
        for sum in [0u64, 1, 1023, 1024, 4096, 131_072, 2_000_000] {
            let scalar = paco_types::Probability::clamped(
                (-(sum as f64) / EncodedProb::SCALE as f64).exp2(),
            )
            .value()
            .to_bits();
            assert_eq!(d.prob_bits(sum), scalar, "sum={sum}");
        }
    }
}
