//! Appendix-A ablation variants: static MRT and per-branch MRT.

use crate::{
    BranchFetchInfo, BranchToken, ConfidenceScore, EncodedProb, LogCircuit, LogMode, MrtBucket,
    PathConfidenceCalculator, PathConfidenceEstimator,
};
use paco_branch::Mdc;
use paco_types::canon::Canon;
use paco_types::Probability;

/// The *Static MRT* variant (paper Appendix A): fixed, profile-derived
/// encoded probabilities per MDC value — no counters, no log circuit.
///
/// Cheaper hardware, but unable to adapt across benchmarks or phases; the
/// paper finds it roughly triples the RMS error.
///
/// # Examples
///
/// ```
/// use paco::{StaticMrtPredictor, PathConfidenceEstimator, BranchFetchInfo};
/// use paco_branch::Mdc;
///
/// let mut pred = StaticMrtPredictor::with_default_profile();
/// let t = pred.on_fetch(BranchFetchInfo::conditional(Mdc::new(0)));
/// assert!(pred.goodpath_probability().unwrap().value() < 1.0);
/// pred.on_resolve(t, false);
/// ```
#[derive(Debug, Clone)]
pub struct StaticMrtPredictor {
    encodings: [EncodedProb; Mdc::BUCKETS],
    calculator: PathConfidenceCalculator,
}

impl StaticMrtPredictor {
    /// Creates a static-MRT predictor from a profile of per-MDC
    /// correct-prediction probabilities (already encoded).
    pub fn new(encodings: [EncodedProb; Mdc::BUCKETS]) -> Self {
        StaticMrtPredictor {
            encodings,
            calculator: PathConfidenceCalculator::new(),
        }
    }

    /// Creates a static-MRT predictor from real probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is NaN.
    pub fn from_profile(correct_prob: [f64; Mdc::BUCKETS]) -> Self {
        let mut encodings = [EncodedProb::CERTAIN; Mdc::BUCKETS];
        for (enc, &p) in encodings.iter_mut().zip(correct_prob.iter()) {
            *enc = EncodedProb::from_probability(Probability::clamped(p));
        }
        Self::new(encodings)
    }

    /// A cross-benchmark average profile of per-MDC mispredict rates,
    /// shaped like the paper's Figure 2 (high mispredict rates at low MDC
    /// values, decaying toward zero at MDC 15).
    pub fn with_default_profile() -> Self {
        Self::from_profile(DEFAULT_MDC_CORRECT_PROFILE)
    }

    /// The fixed encodings in use.
    pub fn encodings(&self) -> &[EncodedProb; Mdc::BUCKETS] {
        &self.encodings
    }
}

/// Cross-benchmark average correct-prediction probability per MDC value.
///
/// Derived from the paper's Figure 2 shape: MDC 0 branches mispredict
/// ~35% of the time, decaying roughly geometrically with MDC value.
pub const DEFAULT_MDC_CORRECT_PROFILE: [f64; Mdc::BUCKETS] = [
    0.65, 0.75, 0.82, 0.86, 0.89, 0.915, 0.935, 0.95, 0.96, 0.968, 0.975, 0.98, 0.985, 0.988,
    0.991, 0.9975,
];

impl PathConfidenceEstimator for StaticMrtPredictor {
    #[inline]
    fn on_fetch(&mut self, info: BranchFetchInfo) -> BranchToken {
        match info.mdc {
            Some(mdc) => {
                let enc = self.encodings[mdc.bucket()];
                self.calculator.add(enc);
                BranchToken {
                    encoded: enc.raw(),
                    low_conf: false,
                    mdc: Some(mdc),
                    table_key: info.table_key,
                }
            }
            None => BranchToken::empty(),
        }
    }

    #[inline]
    fn on_resolve(&mut self, token: BranchToken, _mispredicted: bool) {
        if token.mdc.is_some() {
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
        }
    }

    #[inline]
    fn on_squash(&mut self, token: BranchToken) {
        if token.mdc.is_some() {
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
        }
    }

    #[inline]
    fn score(&self) -> ConfidenceScore {
        ConfidenceScore(self.calculator.encoded_sum())
    }

    #[inline]
    fn goodpath_probability(&self) -> Option<Probability> {
        Some(self.calculator.goodpath_probability())
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        // The encodings are profile constants; only the register mutates.
        self.calculator.save_state(out);
    }

    fn load_state(&mut self, input: &mut &[u8]) -> bool {
        self.calculator.load_state(input)
    }

    fn name(&self) -> String {
        "StaticMRT".to_string()
    }
}

/// Configuration for a [`PerBranchMrtPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerBranchMrtConfig {
    /// Number of table entries (power of two).
    pub entries: usize,
    /// Log mode for the on-demand encoding.
    pub log_mode: LogMode,
}

impl PerBranchMrtConfig {
    /// The Appendix-A configuration: a large per-branch table indexed by
    /// hash(PC, global history) — "more hardware-intensive" than the MDC
    /// bucketing. With one entry per (branch, history) context each entry
    /// sees only a handful of outcomes, which is precisely why the paper
    /// finds this design far *less* accurate: lifetime micro-samples have
    /// neither the recency signal nor the statistical mass of the 16
    /// shared MDC buckets.
    pub const fn paper() -> Self {
        PerBranchMrtConfig {
            entries: 64 * 1024,
            log_mode: LogMode::Exact,
        }
    }
}

impl Default for PerBranchMrtConfig {
    fn default() -> Self {
        PerBranchMrtConfig::paper()
    }
}

impl Canon for PerBranchMrtConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x13); // type tag
        self.entries.canon(out);
        self.log_mode.canon(out);
    }
}

/// The *Per-branch MRT* variant (paper Appendix A): instead of bucketing
/// branches by MDC value, keep a mispredict-rate entry per branch (indexed
/// by a hash of PC and global history).
///
/// The paper finds this *worse* than MDC bucketing: a lifetime mispredict
/// rate weighs ancient and recent mispredicts equally, losing the
/// recency/correlation signal that the MDC structure captures.
#[derive(Debug, Clone)]
pub struct PerBranchMrtPredictor {
    table: Vec<MrtBucket>,
    mask: u64,
    circuit: LogCircuit,
    calculator: PathConfidenceCalculator,
}

impl PerBranchMrtPredictor {
    /// Creates a per-branch MRT predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(config: PerBranchMrtConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "table size must be a power of two"
        );
        PerBranchMrtPredictor {
            table: vec![MrtBucket::default(); config.entries],
            mask: config.entries as u64 - 1,
            circuit: LogCircuit::new(config.log_mode),
            calculator: PathConfidenceCalculator::new(),
        }
    }

    #[inline]
    fn entry_index(&self, table_key: u64) -> usize {
        (table_key & self.mask) as usize
    }

    /// The current encoding a branch with `table_key` would contribute.
    pub fn entry_encoding(&self, table_key: u64) -> EncodedProb {
        let e = &self.table[self.entry_index(table_key)];
        if e.is_empty() {
            // Optimistic prior: an unseen branch is assumed predictable.
            EncodedProb::CERTAIN
        } else {
            self.circuit.encode_ratio(e.correct(), e.mispred())
        }
    }
}

impl PathConfidenceEstimator for PerBranchMrtPredictor {
    #[inline]
    fn on_fetch(&mut self, info: BranchFetchInfo) -> BranchToken {
        match info.mdc {
            Some(mdc) => {
                let enc = self.entry_encoding(info.table_key);
                self.calculator.add(enc);
                BranchToken {
                    encoded: enc.raw(),
                    low_conf: false,
                    mdc: Some(mdc),
                    table_key: info.table_key,
                }
            }
            None => BranchToken::empty(),
        }
    }

    #[inline]
    fn on_resolve(&mut self, token: BranchToken, mispredicted: bool) {
        if token.mdc.is_some() {
            let idx = self.entry_index(token.table_key);
            self.table[idx].record(mispredicted);
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
        }
    }

    #[inline]
    fn on_squash(&mut self, token: BranchToken) {
        if token.mdc.is_some() {
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
        }
    }

    #[inline]
    fn score(&self) -> ConfidenceScore {
        ConfidenceScore(self.calculator.encoded_sum())
    }

    #[inline]
    fn goodpath_probability(&self) -> Option<Probability> {
        Some(self.calculator.goodpath_probability())
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        paco_types::wire::write_uvarint(out, self.table.len() as u64);
        for bucket in &self.table {
            bucket.save_state(out);
        }
        self.calculator.save_state(out);
    }

    fn load_state(&mut self, input: &mut &[u8]) -> bool {
        if paco_types::wire::read_uvarint(input) != Some(self.table.len() as u64) {
            return false;
        }
        for bucket in &mut self.table {
            if !bucket.load_state(input) {
                return false;
            }
        }
        self.calculator.load_state(input)
    }

    fn name(&self) -> String {
        "PerBranchMRT".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond_keyed(mdc: u8, key: u64) -> BranchFetchInfo {
        BranchFetchInfo::conditional_keyed(Mdc::new(mdc), key)
    }

    #[test]
    fn static_profile_orders_buckets() {
        let p = StaticMrtPredictor::with_default_profile();
        // Lower MDC → lower correct probability → larger encoding.
        for i in 1..16 {
            assert!(
                p.encodings()[i - 1] >= p.encodings()[i],
                "bucket {i} should encode no larger than bucket {}",
                i - 1
            );
        }
    }

    #[test]
    fn static_mrt_add_remove_round_trip() {
        let mut p = StaticMrtPredictor::with_default_profile();
        let t1 = p.on_fetch(cond_keyed(0, 1));
        let t2 = p.on_fetch(cond_keyed(5, 2));
        assert!(p.score() > ConfidenceScore(0));
        p.on_resolve(t1, true);
        p.on_squash(t2);
        assert_eq!(p.score(), ConfidenceScore(0));
    }

    #[test]
    fn per_branch_learns_lifetime_rate() {
        let mut p = PerBranchMrtPredictor::new(PerBranchMrtConfig::paper());
        let key = 0x1234;
        // 50% lifetime mispredict rate.
        for i in 0..100 {
            let t = p.on_fetch(cond_keyed(0, key));
            p.on_resolve(t, i % 2 == 0);
        }
        let enc = p.entry_encoding(key);
        assert!((enc.raw() as i64 - 1024).abs() <= 16, "enc={}", enc.raw());
    }

    #[test]
    fn per_branch_ignores_recency() {
        // The paper's critique: branch P (1 mispredict then 100 correct)
        // and branch Q (100 correct then 1 mispredict) get the same weight.
        let mut p = PerBranchMrtPredictor::new(PerBranchMrtConfig::paper());
        let (kp, kq) = (0x10u64, 0x20u64);
        let t = p.on_fetch(cond_keyed(0, kp));
        p.on_resolve(t, true);
        for _ in 0..100 {
            let t = p.on_fetch(cond_keyed(0, kp));
            p.on_resolve(t, false);
        }
        for _ in 0..100 {
            let t = p.on_fetch(cond_keyed(0, kq));
            p.on_resolve(t, false);
        }
        let t = p.on_fetch(cond_keyed(0, kq));
        p.on_resolve(t, true);
        assert_eq!(p.entry_encoding(kp), p.entry_encoding(kq));
    }

    #[test]
    fn per_branch_cold_entry_is_optimistic() {
        let p = PerBranchMrtPredictor::new(PerBranchMrtConfig::paper());
        assert_eq!(p.entry_encoding(0xdead), EncodedProb::CERTAIN);
    }

    #[test]
    fn names() {
        assert_eq!(
            StaticMrtPredictor::with_default_profile().name(),
            "StaticMRT"
        );
        assert_eq!(
            PerBranchMrtPredictor::new(PerBranchMrtConfig::paper()).name(),
            "PerBranchMRT"
        );
    }
}
