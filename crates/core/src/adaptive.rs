//! The adaptive (change-point-aware) MRT variant.
//!
//! PaCo's fixed 200k-cycle refresh period is the wrong tool for
//! workloads whose branch behaviour flips between regimes faster than
//! the period: the MRT latches encodings measured across the flip, and
//! the calculator then sums stale probabilities for up to half a window
//! (the `phased_flip` negative result in docs/WORKLOADS.md). This
//! module closes that gap with explicit change detection rather than a
//! shorter window:
//!
//! * every resolved conditional branch feeds a rolling mispredict rate,
//!   chopped into fixed-size detection windows;
//! * the first few windows after each refresh form a *baseline* rate;
//!   subsequent windows feed `|rate − baseline|` into a one-sided
//!   [`CusumDetector`] (the same primitive the watch plane uses);
//! * when the CUSUM latches, the contaminated MRT counters are
//!   discarded and — after a short settle interval measured in pure
//!   post-change resolves — an **early refresh** latches encodings for
//!   the new regime instead of waiting out the period;
//! * optionally, each refresh *blends* the measured encodings with the
//!   static Figure-2 profile, weighted by which of the two better
//!   calibrated the just-measured counters (reliability RMS, reusing
//!   `paco_analysis`): when the dynamic path has been reliable it
//!   dominates, and when regimes churn faster than it can track, the
//!   latch slides toward the static prior that `phased_flip` rewards.

use crate::estimator::{BranchFetchInfo, BranchToken, ConfidenceScore};
use crate::variants::DEFAULT_MDC_CORRECT_PROFILE;
use crate::{
    EncodedProb, LogCircuit, LogMode, MispredictRateTable, PathConfidenceCalculator,
    PathConfidenceEstimator,
};
use paco_analysis::{CusumDetector, ReliabilityDiagram};
use paco_branch::Mdc;
use paco_types::canon::Canon;
use paco_types::{wire, Probability};

/// Configuration for an [`AdaptiveMrtPredictor`].
///
/// All knobs are integers (rates in permille) so the configuration is
/// `Copy + Eq` and canon-hashes without floating-point bit games.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveMrtConfig {
    /// Cycles between periodic MRT refreshes (the PaCo baseline period;
    /// change detection only ever *shortens* the effective window).
    pub refresh_period: u64,
    /// Which log implementation the refresh circuit uses.
    pub log_mode: LogMode,
    /// Resolved conditional branches per detection window.
    pub detect_window: u32,
    /// CUSUM per-window drift threshold, in permille of absolute
    /// mispredict-rate divergence from the baseline.
    pub threshold_permille: u32,
    /// CUSUM latch limit, in permille (accumulated excess divergence).
    pub limit_permille: u32,
    /// Windows after each refresh that form the baseline rate before
    /// divergence accumulation starts.
    pub warmup_windows: u32,
    /// Whether refreshes blend measured encodings with the static
    /// profile by recent calibration error.
    pub blend: bool,
}

impl AdaptiveMrtConfig {
    /// The reference configuration used by the robustness sweep: the
    /// paper's refresh period and log circuit, with detection tuned so
    /// a `phased_flip`-sized rate step (tens of percent) latches within
    /// a few windows while steady-state noise (about a percent per
    /// window at 512 resolves) never accumulates.
    pub const fn paper() -> Self {
        AdaptiveMrtConfig {
            refresh_period: 200_000,
            log_mode: LogMode::Mitchell,
            detect_window: 512,
            threshold_permille: 30,
            limit_permille: 60,
            warmup_windows: 2,
            blend: true,
        }
    }

    /// Overrides the refresh period, builder-style.
    pub const fn with_refresh_period(mut self, cycles: u64) -> Self {
        self.refresh_period = cycles;
        self
    }

    /// Overrides the detection window, builder-style.
    pub const fn with_detect_window(mut self, resolves: u32) -> Self {
        self.detect_window = resolves;
        self
    }

    /// Enables or disables the calibration-weighted blend, builder-style.
    pub const fn with_blend(mut self, blend: bool) -> Self {
        self.blend = blend;
        self
    }
}

impl Default for AdaptiveMrtConfig {
    fn default() -> Self {
        AdaptiveMrtConfig::paper()
    }
}

impl Canon for AdaptiveMrtConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x14); // type tag
        self.refresh_period.canon(out);
        self.log_mode.canon(out);
        self.detect_window.canon(out);
        self.threshold_permille.canon(out);
        self.limit_permille.canon(out);
        self.warmup_windows.canon(out);
        self.blend.canon(out);
    }
}

/// The adaptive MRT predictor: PaCo's MRT + calculator + log circuit,
/// plus CUSUM change detection on the rolling mispredict rate that
/// triggers early refreshes (see the module docs for the mechanism).
///
/// # Examples
///
/// ```
/// use paco::{AdaptiveMrtPredictor, AdaptiveMrtConfig, PathConfidenceEstimator};
/// use paco::BranchFetchInfo;
/// use paco_branch::Mdc;
///
/// let mut pred = AdaptiveMrtPredictor::new(AdaptiveMrtConfig::paper());
/// let t = pred.on_fetch(BranchFetchInfo::conditional(Mdc::new(0)));
/// assert!(pred.goodpath_probability().unwrap().value() <= 1.0);
/// pred.on_resolve(t, false);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveMrtPredictor {
    mrt: MispredictRateTable,
    calculator: PathConfidenceCalculator,
    circuit: LogCircuit,
    static_encodings: [EncodedProb; Mdc::BUCKETS],
    refresh_period: u64,
    detect_window: u32,
    warmup_windows: u32,
    blend: bool,
    cycles_since_refresh: u64,
    refreshes: u64,
    early_refreshes: u64,
    detector: CusumDetector,
    window_resolves: u32,
    window_mispred: u32,
    baseline_windows: u32,
    baseline_rate_sum: f64,
    settle_left: u32,
}

impl AdaptiveMrtPredictor {
    /// Creates an adaptive-MRT predictor.
    pub fn new(config: AdaptiveMrtConfig) -> Self {
        let mut static_encodings = [EncodedProb::CERTAIN; Mdc::BUCKETS];
        for (enc, &p) in static_encodings
            .iter_mut()
            .zip(DEFAULT_MDC_CORRECT_PROFILE.iter())
        {
            *enc = EncodedProb::from_probability(Probability::clamped(p));
        }
        AdaptiveMrtPredictor {
            mrt: MispredictRateTable::new(),
            calculator: PathConfidenceCalculator::new(),
            circuit: LogCircuit::new(config.log_mode),
            static_encodings,
            refresh_period: config.refresh_period.max(1),
            detect_window: config.detect_window.max(1),
            warmup_windows: config.warmup_windows,
            blend: config.blend,
            cycles_since_refresh: 0,
            refreshes: 0,
            early_refreshes: 0,
            detector: CusumDetector::new(
                config.threshold_permille as f64 / 1000.0,
                config.limit_permille as f64 / 1000.0,
            ),
            window_resolves: 0,
            window_mispred: 0,
            baseline_windows: 0,
            baseline_rate_sum: 0.0,
            settle_left: 0,
        }
    }

    /// Read access to the MRT.
    pub fn mrt(&self) -> &MispredictRateTable {
        &self.mrt
    }

    /// Total refreshes performed so far (periodic + early).
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Early (change-triggered) refreshes among
    /// [`refresh_count`](Self::refresh_count).
    pub fn early_refresh_count(&self) -> u64 {
        self.early_refreshes
    }

    /// Resolves remaining in the post-detection settle interval (0 when
    /// no change is pending).
    fn settle_span(&self) -> u32 {
        self.detect_window
            .saturating_mul(self.warmup_windows.max(1))
    }

    /// Latches encodings from the current counters — blended against
    /// the static profile when enabled — and restarts both the period
    /// timer and the detection state machine.
    fn refresh_now(&mut self) {
        if self.blend {
            let w = self.dynamic_weight();
            let statics = self.static_encodings;
            self.mrt.refresh_map(self.circuit, |i, measured| {
                let m = measured.raw() as f64;
                let s = statics[i].raw() as f64;
                EncodedProb::from_raw((w * m + (1.0 - w) * s).round() as u32)
            });
        } else {
            self.mrt.refresh(self.circuit);
        }
        self.refreshes += 1;
        self.reset_detection();
    }

    /// Weight of the *measured* encodings in the blend, from the
    /// relative reliability RMS of the outgoing dynamic encodings vs
    /// the static profile, both judged against the counters collected
    /// since the last latch: the encodings that better predicted the
    /// realized per-bucket correct rates earn the larger share.
    fn dynamic_weight(&self) -> f64 {
        let mut dyn_bins = [(0u64, 0u64); 101];
        let mut sta_bins = [(0u64, 0u64); 101];
        for (i, (&dyn_enc, &sta_enc)) in self
            .mrt
            .encodings()
            .iter()
            .zip(self.static_encodings.iter())
            .enumerate()
        {
            let b = self.mrt.bucket(Mdc::new(i as u8));
            if b.is_empty() {
                continue;
            }
            let (n, good) = (b.total() as u64, b.correct() as u64);
            for (bins, enc) in [(&mut dyn_bins, dyn_enc), (&mut sta_bins, sta_enc)] {
                let pct = (enc.to_probability().value() * 100.0).round() as usize;
                bins[pct.min(100)].0 += n;
                bins[pct.min(100)].1 += good;
            }
        }
        let err_d = ReliabilityDiagram::from_bins(&dyn_bins).rms_error();
        let err_s = ReliabilityDiagram::from_bins(&sta_bins).rms_error();
        if err_d + err_s <= 0.0 {
            // Both calibrated perfectly (or no samples): keep the
            // measured encodings.
            1.0
        } else {
            err_s / (err_d + err_s)
        }
    }

    fn reset_detection(&mut self) {
        self.detector.reset();
        self.window_resolves = 0;
        self.window_mispred = 0;
        self.baseline_windows = 0;
        self.baseline_rate_sum = 0.0;
        self.settle_left = 0;
    }

    /// Detection accounting for one resolved conditional branch.
    fn note_resolve(&mut self, mispredicted: bool) {
        if self.settle_left > 0 {
            // A change was detected; we are re-measuring from scratch.
            self.settle_left -= 1;
            if self.settle_left == 0 {
                self.early_refreshes += 1;
                self.cycles_since_refresh = 0;
                self.refresh_now();
            }
            return;
        }
        self.window_resolves += 1;
        self.window_mispred += mispredicted as u32;
        if self.window_resolves < self.detect_window {
            return;
        }
        let rate = self.window_mispred as f64 / self.window_resolves as f64;
        self.window_resolves = 0;
        self.window_mispred = 0;
        if self.baseline_windows < self.warmup_windows {
            self.baseline_windows += 1;
            self.baseline_rate_sum += rate;
            return;
        }
        let baseline = if self.warmup_windows == 0 {
            0.0
        } else {
            self.baseline_rate_sum / self.warmup_windows as f64
        };
        if self.detector.observe((rate - baseline).abs()) {
            // Change point: the counters mix two regimes — discard
            // them, then latch from pure post-change samples once the
            // settle interval has passed.
            self.mrt.reset_counters();
            self.detector.reset();
            self.baseline_windows = 0;
            self.baseline_rate_sum = 0.0;
            self.settle_left = self.settle_span();
        }
    }
}

impl PathConfidenceEstimator for AdaptiveMrtPredictor {
    #[inline]
    fn on_fetch(&mut self, info: BranchFetchInfo) -> BranchToken {
        match info.mdc {
            Some(mdc) => {
                let enc = self.mrt.encoded(mdc);
                self.calculator.add(enc);
                BranchToken {
                    encoded: enc.raw(),
                    low_conf: false,
                    mdc: Some(mdc),
                    table_key: info.table_key,
                }
            }
            None => BranchToken::empty(),
        }
    }

    #[inline]
    fn on_resolve(&mut self, token: BranchToken, mispredicted: bool) {
        if let Some(mdc) = token.mdc {
            self.mrt.record(mdc, mispredicted);
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
            self.note_resolve(mispredicted);
        }
    }

    #[inline]
    fn on_squash(&mut self, token: BranchToken) {
        if token.mdc.is_some() {
            // Squashed branches never resolved architecturally: no MRT
            // training, and no detection accounting either.
            self.calculator.remove(EncodedProb::from_raw(token.encoded));
        }
    }

    #[inline]
    fn tick(&mut self, cycles: u64) {
        self.cycles_since_refresh += cycles;
        while self.cycles_since_refresh >= self.refresh_period {
            self.cycles_since_refresh -= self.refresh_period;
            self.refresh_now();
        }
    }

    #[inline]
    fn score(&self) -> ConfidenceScore {
        ConfidenceScore(self.calculator.encoded_sum())
    }

    #[inline]
    fn goodpath_probability(&self) -> Option<Probability> {
        Some(self.calculator.goodpath_probability())
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        self.mrt.save_state(out);
        self.calculator.save_state(out);
        wire::write_uvarint(out, self.cycles_since_refresh);
        wire::write_uvarint(out, self.refreshes);
        wire::write_uvarint(out, self.early_refreshes);
        wire::write_uvarint(out, self.window_resolves as u64);
        wire::write_uvarint(out, self.window_mispred as u64);
        wire::write_uvarint(out, self.baseline_windows as u64);
        wire::write_uvarint(out, self.baseline_rate_sum.to_bits());
        wire::write_uvarint(out, self.settle_left as u64);
        wire::write_uvarint(out, self.detector.cusum().to_bits());
        wire::write_uvarint(out, self.detector.last_divergence().to_bits());
        wire::write_uvarint(out, self.detector.windows());
        // flagged_at is always None here: a latch immediately resets
        // the detector in note_resolve. Saved anyway (as Option) so the
        // blob stays honest about the detector's full dynamic state.
        match self.detector.flagged_at() {
            None => wire::write_uvarint(out, 0),
            Some(w) => wire::write_uvarint(out, w + 1),
        }
    }

    fn load_state(&mut self, input: &mut &[u8]) -> bool {
        if !self.mrt.load_state(input) || !self.calculator.load_state(input) {
            return false;
        }
        let mut next = || wire::read_uvarint(input);
        let (Some(cycles), Some(refreshes), Some(early)) = (next(), next(), next()) else {
            return false;
        };
        let (Some(win_res), Some(win_mis), Some(base_win)) = (next(), next(), next()) else {
            return false;
        };
        let (Some(base_bits), Some(settle), Some(cusum_bits)) = (next(), next(), next()) else {
            return false;
        };
        let (Some(last_bits), Some(det_windows), Some(flagged)) = (next(), next(), next()) else {
            return false;
        };
        if cycles >= self.refresh_period
            || early > refreshes
            || win_res >= self.detect_window as u64
            || win_mis > win_res
            || base_win > self.warmup_windows as u64
            || settle > self.settle_span() as u64
        {
            return false;
        }
        let baseline_rate_sum = f64::from_bits(base_bits);
        let cusum = f64::from_bits(cusum_bits);
        if !baseline_rate_sum.is_finite() || !cusum.is_finite() || cusum < 0.0 {
            return false;
        }
        self.cycles_since_refresh = cycles;
        self.refreshes = refreshes;
        self.early_refreshes = early;
        self.window_resolves = win_res as u32;
        self.window_mispred = win_mis as u32;
        self.baseline_windows = base_win as u32;
        self.baseline_rate_sum = baseline_rate_sum;
        self.settle_left = settle as u32;
        self.detector.restore(
            cusum,
            f64::from_bits(last_bits),
            det_windows,
            0,
            flagged.checked_sub(1),
        );
        true
    }

    // No on_chunk override: the default trait body replays the exact
    // per-event sequence, so the chunked kernel lane is byte-identical
    // to this per-event implementation by construction.

    fn name(&self) -> String {
        "AdaptiveMRT".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(mdc: u8) -> BranchFetchInfo {
        BranchFetchInfo::conditional(Mdc::new(mdc))
    }

    /// A tiny config with fast detection for unit tests.
    fn tiny() -> AdaptiveMrtConfig {
        AdaptiveMrtConfig {
            refresh_period: 10_000,
            log_mode: LogMode::Exact,
            detect_window: 32,
            threshold_permille: 50,
            limit_permille: 100,
            warmup_windows: 2,
            blend: false,
        }
    }

    fn drive(p: &mut AdaptiveMrtPredictor, n: usize, mispredict_every: usize) {
        for i in 0..n {
            let t = p.on_fetch(cond((i % 16) as u8));
            p.on_resolve(t, mispredict_every != 0 && i % mispredict_every == 0);
        }
    }

    #[test]
    fn steady_stream_never_triggers_early_refresh() {
        let mut p = AdaptiveMrtPredictor::new(tiny());
        drive(&mut p, 20_000, 10);
        assert_eq!(p.early_refresh_count(), 0);
    }

    #[test]
    fn regime_flip_triggers_early_refresh_and_relatches() {
        let mut p = AdaptiveMrtPredictor::new(tiny());
        // Quiet regime: 2% mispredicts, long enough to form a baseline.
        drive(&mut p, 4_000, 50);
        assert_eq!(p.early_refresh_count(), 0);
        // Flip to a 50% mispredict regime without any tick: only change
        // detection can refresh here.
        drive(&mut p, 4_000, 2);
        assert!(p.early_refresh_count() >= 1, "flip must latch the CUSUM");
        assert_eq!(p.refresh_count(), p.early_refresh_count());
        // The relatched bucket encodings reflect the *new* regime: an
        // in-flight branch roughly halves the goodpath probability.
        let t = p.on_fetch(cond(0));
        let prob = p.goodpath_probability().unwrap().value();
        assert!(prob < 0.75, "encodings still optimistic: p = {prob}");
        p.on_squash(t);
    }

    #[test]
    fn periodic_refresh_still_fires_via_tick() {
        let mut p = AdaptiveMrtPredictor::new(tiny());
        drive(&mut p, 100, 4);
        p.tick(9_999);
        assert_eq!(p.refresh_count(), 0);
        p.tick(1);
        assert_eq!(p.refresh_count(), 1);
        assert_eq!(p.early_refresh_count(), 0);
        p.tick(25_000);
        assert_eq!(p.refresh_count(), 3);
    }

    #[test]
    fn squash_feeds_neither_mrt_nor_detector() {
        let mut p = AdaptiveMrtPredictor::new(tiny());
        let before = p.mrt().bucket(Mdc::new(0)).total();
        for _ in 0..1_000 {
            let t = p.on_fetch(cond(0));
            p.on_squash(t);
        }
        assert_eq!(p.mrt().bucket(Mdc::new(0)).total(), before);
        assert_eq!(p.score(), ConfidenceScore(0));
        assert_eq!(p.early_refresh_count(), 0);
    }

    #[test]
    fn blend_pulls_stale_encodings_toward_static_profile() {
        // Latch encodings from an optimistic regime, then measure a
        // pessimistic one: at the next refresh the blended encoding
        // must land strictly between pure-measured and the old latch.
        let mut blended = AdaptiveMrtPredictor::new(AdaptiveMrtConfig {
            blend: true,
            ..tiny()
        });
        let mut pure = AdaptiveMrtPredictor::new(tiny());
        for p in [&mut blended, &mut pure] {
            drive(p, 512, 0); // 0% mispredicts
            p.tick(10_000); // latch optimistic encodings
                            // New regime: 50% mispredicts in every bucket, short enough
                            // that detection (warmup 2×32 + settle) hasn't relatched
                            // uniformly; force the comparison at a periodic refresh.
            drive(p, 128, 2);
            p.tick(10_000);
        }
        // Pure-measured bucket 0 encodes ~50% correct => raw ~1024.
        // The stale dynamic encodings (certainty) calibrate terribly
        // against the 50% counters, so the blend leans static
        // (raw ~636 for bucket 0's 0.65 profile)… either way the
        // blended value must differ from pure-measured and stay
        // in the [static, measured] hull.
        let m = pure.mrt().encoded(Mdc::new(0)).raw();
        let b = blended.mrt().encoded(Mdc::new(0)).raw();
        let s = EncodedProb::from_probability(Probability::clamped(DEFAULT_MDC_CORRECT_PROFILE[0]))
            .raw();
        let (lo, hi) = (m.min(s), m.max(s));
        assert!((lo..=hi).contains(&b), "blend {b} outside [{lo}, {hi}]");
        assert_ne!(b, m, "blend had no effect");
    }

    #[test]
    fn snapshot_resumes_bit_identically_through_detection() {
        let config = tiny();
        let mut p = AdaptiveMrtPredictor::new(config);
        // Leave the predictor mid-window, mid-baseline, with a warm MRT.
        drive(&mut p, 4_000 + 17, 25);
        p.tick(123);
        let in_flight = p.on_fetch(cond(3));

        let mut blob = Vec::new();
        p.save_state(&mut blob);
        let mut q = AdaptiveMrtPredictor::new(config);
        let mut input = blob.as_slice();
        assert!(q.load_state(&mut input));
        assert!(input.is_empty(), "restore must consume the whole blob");

        // Drive both through a regime flip and a periodic refresh; every
        // observable (and the full state blob) must stay in lockstep.
        for est in [&mut p, &mut q] {
            est.on_resolve(in_flight, true);
            drive(est, 3_000, 2);
            est.tick(10_000);
        }
        assert_eq!(p.refresh_count(), q.refresh_count());
        assert_eq!(p.early_refresh_count(), q.early_refresh_count());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        p.save_state(&mut a);
        q.save_state(&mut b);
        assert_eq!(a, b, "post-restore state must be bit-identical");
    }

    #[test]
    fn snapshot_restore_rejects_garbage() {
        let mut p = AdaptiveMrtPredictor::new(tiny());
        drive(&mut p, 100, 7);
        let mut blob = Vec::new();
        p.save_state(&mut blob);
        // Truncation at every prefix length must be rejected (never
        // panic, never accept).
        for cut in 0..blob.len() {
            let mut q = AdaptiveMrtPredictor::new(tiny());
            assert!(!q.load_state(&mut &blob[..cut]), "accepted prefix {cut}");
        }
        // A blob from a faster-refreshing config can hold pending
        // cycles past this config's period: inconsistent.
        let mut donor = AdaptiveMrtPredictor::new(AdaptiveMrtConfig {
            refresh_period: 1_000_000,
            ..tiny()
        });
        donor.tick(500_000);
        let mut bad = Vec::new();
        donor.save_state(&mut bad);
        let mut q = AdaptiveMrtPredictor::new(tiny());
        assert!(!q.load_state(&mut bad.as_slice()));
    }

    #[test]
    fn name_and_default() {
        assert_eq!(
            AdaptiveMrtPredictor::new(Default::default()).name(),
            "AdaptiveMRT"
        );
        assert_eq!(AdaptiveMrtConfig::default(), AdaptiveMrtConfig::paper());
    }
}
