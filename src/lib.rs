//! Root package of the PaCo reproduction workspace.
//!
//! This crate exists to anchor the top-level `tests/` (whole-system
//! integration suites) and `examples/` directories; all functionality
//! lives in the `crates/` members:
//!
//! * `paco-types` — shared vocabulary types (PCs, instructions, RNG).
//! * `paco-branch` — branch predictors + JRS confidence tables.
//! * `paco` — the PaCo path-confidence estimator and baselines.
//! * `paco-workloads` — synthetic SPEC2000int-like workload models and
//!   trace replay.
//! * `paco-sim` — the cycle-level out-of-order/SMT simulator.
//! * `paco-trace` — binary branch-trace record/replay subsystem.
//! * `paco-analysis` — reliability diagrams and forecast metrics.
//! * `paco-bench` — experiment harnesses reproducing the paper's
//!   tables and figures.
//!
//! See the top-level `README.md` for the crate graph and a record/replay
//! quickstart.
