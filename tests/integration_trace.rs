//! Trace record/replay integration: a trace recorded from a live
//! simulation, replayed through `TraceWorkload`, reproduces the live
//! run's per-thread retired-instruction and mispredict counts exactly.

use std::path::PathBuf;

use paco::PacoConfig;
use paco_sim::{EstimatorKind, MachineBuilder, MachineStats, SimConfig};
use paco_trace::{
    load_workload, open_workload, TraceMeta, TraceReader, TraceRecorder, TraceWriter,
};
use paco_workloads::{BenchmarkId, Workload};

const INSTRS: u64 = 60_000;
const SEED: u64 = 7;

/// A temp trace path removed on drop, so failed asserts don't leak files.
struct TempTrace(PathBuf);

impl TempTrace {
    fn new(tag: &str) -> Self {
        TempTrace(std::env::temp_dir().join(format!(
            "paco-integration-{}-{tag}.trace",
            std::process::id()
        )))
    }
}

impl Drop for TempTrace {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn machine_with(
    workload: Box<dyn Workload>,
    sink: Option<Box<dyn paco_sim::TraceSink>>,
) -> paco_sim::Machine {
    let mut builder = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(workload, EstimatorKind::Paco(PacoConfig::paper()))
        .seed(SEED);
    if let Some(sink) = sink {
        builder = builder.trace_sink(sink);
    }
    builder.build()
}

fn assert_identical_runs(live: &MachineStats, replayed: &MachineStats) {
    assert_eq!(live.cycles, replayed.cycles, "cycle counts diverge");
    for (l, r) in live.threads.iter().zip(&replayed.threads) {
        assert_eq!(l.retired, r.retired, "retired counts diverge");
        assert_eq!(
            l.cond_mispredicted, r.cond_mispredicted,
            "conditional mispredict counts diverge"
        );
        assert_eq!(
            l.control_mispredicted, r.control_mispredicted,
            "overall mispredict counts diverge"
        );
        assert_eq!(l.fetched, r.fetched, "fetch counts diverge");
        assert_eq!(
            l.fetched_badpath, r.fetched_badpath,
            "wrong-path fetch counts diverge"
        );
        assert_eq!(l.executed, r.executed, "execute counts diverge");
    }
}

/// The headline acceptance test: record a gzip run through the
/// simulator's trace-sink hook, replay the file through `TraceWorkload`,
/// and require the *exact* same counts — not just statistically similar.
#[test]
fn recorded_gzip_replay_reproduces_live_counts_exactly() {
    let path = TempTrace::new("gzip-exact");
    let workload = BenchmarkId::Gzip.build(SEED);
    let recorder =
        TraceRecorder::create(&path.0, &TraceMeta::for_workload(&workload)).expect("create trace");

    let mut live = machine_with(Box::new(workload), Some(recorder.sink()));
    let live_stats = live.run(INSTRS);
    let summary = recorder.finish().expect("finalize trace");
    assert!(
        summary.records >= INSTRS,
        "trace must cover the run: {} records",
        summary.records
    );
    assert!(
        live_stats.threads[0].cond_mispredicted > 0,
        "run must mispredict"
    );

    // Streaming replay.
    let replay = open_workload(&path.0).expect("open trace");
    let mut replayed = machine_with(Box::new(replay), None);
    let replay_stats = replayed.run(INSTRS);
    assert_identical_runs(&live_stats, &replay_stats);

    // Preloaded replay takes the same path through the simulator.
    let replay = load_workload(&path.0).expect("load trace");
    let mut replayed = machine_with(Box::new(replay), None);
    assert_identical_runs(&live_stats, &replayed.run(INSTRS));
}

/// Direct workload capture (the CLI's fast path) records the same stream
/// the simulator pulls: the simulator-recorded trace is the direct trace
/// plus the in-flight tail.
#[test]
fn direct_capture_is_a_prefix_of_simulated_capture() {
    let direct_path = TempTrace::new("direct");
    let sim_path = TempTrace::new("sim");

    let mut workload = BenchmarkId::Twolf.build(SEED);
    let mut writer =
        TraceWriter::create(&direct_path.0, &TraceMeta::for_workload(&workload)).unwrap();
    for _ in 0..20_000 {
        writer.push_instr(&workload.next_instr()).unwrap();
    }
    let (direct_summary, _) = writer.finish().unwrap();
    assert_eq!(direct_summary.records, 20_000);

    let workload = BenchmarkId::Twolf.build(SEED);
    let recorder = TraceRecorder::create(&sim_path.0, &TraceMeta::for_workload(&workload)).unwrap();
    let mut machine = machine_with(Box::new(workload), Some(recorder.sink()));
    machine.run(20_000);
    let sim_summary = recorder.finish().unwrap();
    assert!(sim_summary.records >= 20_000);

    let mut direct = TraceReader::open(&direct_path.0).unwrap();
    let mut sim = TraceReader::open(&sim_path.0).unwrap();
    assert_eq!(direct.meta(), sim.meta(), "headers must agree");
    for i in 0..20_000u64 {
        let d = direct.next_record().unwrap().expect("direct record");
        let s = sim.next_record().unwrap().expect("sim record");
        assert_eq!(d, s, "streams diverge at record {i}");
    }
}

/// Replay loops (rewinds) when the simulated run outlives the trace, and
/// the simulation keeps running meaningfully on the looped stream.
#[test]
fn short_trace_loops_through_longer_run() {
    let path = TempTrace::new("loop");
    let mut workload = BenchmarkId::Gzip.build(SEED);
    let mut writer = TraceWriter::create(&path.0, &TraceMeta::for_workload(&workload)).unwrap();
    for _ in 0..15_000 {
        writer.push_instr(&workload.next_instr()).unwrap();
    }
    writer.finish().unwrap();

    let replay = open_workload(&path.0).unwrap();
    assert_eq!(replay.trace_len(), Some(15_000));
    let mut machine = machine_with(Box::new(replay), None);
    let stats = machine.run(50_000);
    let t = &stats.threads[0];
    assert!(t.retired >= 50_000, "looped replay must sustain the run");
    assert!(t.cond_retired > 0 && t.cond_mispredicted > 0);
    assert!(t.fetched_badpath > 0, "loops must still drive wrong paths");
}
