//! Whole-system tests of `paco-watch`: the drift detector fires when a
//! streamed session departs its declared workload family mid-stream,
//! stays quiet on an on-profile control run, and telemetry never
//! perturbs the byte-parity guarantee — the acceptance criteria of the
//! watch subsystem.

use paco_corpus::find_entry;
use paco_serve::{
    corpus_control_events, corpus_splice_events, run_load, Client, ClientError, ErrorCode,
    LoadOptions, RunningServer,
};
use paco_sim::OnlineConfig;

/// Instructions per stream segment. Each corpus family yields roughly
/// 12–14% control instructions, so a segment is ~10 windows of 2048
/// events — enough for warmup plus several scored windows on each side
/// of the splice.
const SEGMENT_INSTRS: u64 = 160_000;

fn watch_options() -> LoadOptions {
    LoadOptions {
        // Reference profiles are generated under the default (paper
        // PaCo) config, so watched sessions must run the same config
        // for divergence scores to mean anything.
        config: OnlineConfig::default(),
        threads: 1,
        batch: 512,
        watch: true,
        family: Some("biased_bimodal".into()),
        ..LoadOptions::default()
    }
}

/// Acceptance: a `biased_bimodal` session that switches to
/// `mispredict_storm` mid-stream is flagged by the server's drift
/// detector after the splice point — while the parity digest still
/// matches the offline replay (telemetry must not touch the bytes).
#[test]
fn splice_into_storm_raises_the_drift_flag() {
    let base = find_entry("biased_bimodal").unwrap();
    let storm = find_entry("mispredict_storm").unwrap();
    let (events, splice_at) = corpus_splice_events(
        &base.family,
        base.seed,
        SEGMENT_INSTRS,
        &storm.family,
        storm.seed,
        SEGMENT_INSTRS,
    )
    .unwrap();

    let server = RunningServer::bind("127.0.0.1:0", 2).unwrap();
    let report = run_load(server.addr(), &events, &watch_options()).expect("spliced load");

    assert_eq!(report.parity_ok, Some(true), "watch must not break parity");
    assert_eq!(report.flagged_sessions, 1, "the spliced session must flag");
    let watch = report.sessions[0].watch.as_ref().expect("watch telemetry");
    assert!(watch.drift_flagged);
    // The flag must latch *after* the splice: convert the splice event
    // index to a completed-window index and require the latch window to
    // be past it.
    let splice_window = splice_at as u64 / paco_serve::WATCH_WINDOW;
    assert!(
        watch.drift_window > splice_window,
        "flag at window {} but the splice is at window {splice_window}",
        watch.drift_window
    );
    server.stop();
}

/// The unspliced control run: a `biased_bimodal` session that stays on
/// profile end to end is never flagged.
#[test]
fn unspliced_control_run_stays_quiet() {
    let base = find_entry("biased_bimodal").unwrap();
    let events = corpus_control_events(&base.family, base.seed, 2 * SEGMENT_INSTRS).unwrap();

    let server = RunningServer::bind("127.0.0.1:0", 2).unwrap();
    let report = run_load(server.addr(), &events, &watch_options()).expect("control load");

    assert_eq!(report.parity_ok, Some(true));
    assert_eq!(report.flagged_sessions, 0, "control run must stay quiet");
    let watch = report.sessions[0].watch.as_ref().expect("watch telemetry");
    assert!(!watch.drift_flagged);
    assert_eq!(watch.drift_window, 0);
    assert!(
        watch.windows >= 6,
        "control run too short to be meaningful: {} windows",
        watch.windows
    );
    server.stop();
}

/// Declaring an unknown family is refused with a typed error, and a
/// session without a declared family reports telemetry but never
/// drift-flags.
#[test]
fn family_declaration_is_validated() {
    let server = RunningServer::bind("127.0.0.1:0", 2).unwrap();
    let config = OnlineConfig::default();

    match Client::connect_declaring(server.addr(), &config, "no_such_family") {
        Err(ClientError::Server(ErrorCode::UnknownFamily, msg)) => {
            assert!(
                msg.contains("biased_bimodal"),
                "refusal should list known families, got: {msg}"
            );
        }
        other => panic!("unknown family must be refused, got {other:?}"),
    }

    // An undeclared session still serves stats — with no family and no
    // flag, whatever it streams.
    let storm = find_entry("mispredict_storm").unwrap();
    let events = corpus_control_events(&storm.family, storm.seed, 40_000).unwrap();
    let mut client = Client::connect(server.addr(), &config).unwrap();
    for chunk in events.chunks(512) {
        client.send_events(chunk).unwrap();
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.session.family, None);
    assert!(!stats.session.drift_flagged);
    assert_eq!(stats.session.events, events.len() as u64);
    assert!(stats.fleet.sessions_seen >= 1);
    assert!(stats.fleet.events >= events.len() as u64);
    client.bye().unwrap();
    server.stop();
}
