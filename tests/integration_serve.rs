//! Whole-system tests of the streaming confidence service: byte-parity
//! with the offline pipeline, race-free concurrent sessions, and
//! bit-identical snapshot/resume — the acceptance criteria of the
//! `paco-serve` subsystem.

use std::path::PathBuf;

use paco::PacoConfig;
use paco_serve::{
    control_events, offline_digest, run_load, Client, ClientError, ErrorCode, LoadOptions,
    RunningServer,
};
use paco_sim::{EstimatorKind, OnlineConfig, OnlinePipeline};
use paco_trace::{TraceMeta, TraceWriter};
use paco_types::DynInstr;
use paco_workloads::{BenchmarkId, Workload};

/// Records a small trace to a temp file and returns its path.
fn record_trace(tag: &str, bench: BenchmarkId, instrs: u64, seed: u64) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("paco-serve-test-{}-{tag}.paco", std::process::id()));
    let mut workload = bench.build(seed);
    let mut writer = TraceWriter::create(&path, &TraceMeta::for_workload(&workload)).unwrap();
    for _ in 0..instrs {
        writer.push_instr(&workload.next_instr()).unwrap();
    }
    writer.finish().unwrap();
    path
}

fn tiny_paco() -> OnlineConfig {
    // A short refresh period so runs cross MRT refresh boundaries — the
    // hardest state to keep in lockstep.
    OnlineConfig::tiny(EstimatorKind::Paco(
        PacoConfig::paper().with_refresh_period(500),
    ))
}

/// Streams `events` through a fresh session in `batch`-sized frames,
/// returning the client (digest inside) and all outcomes.
fn stream_all(
    addr: std::net::SocketAddr,
    config: &OnlineConfig,
    events: &[DynInstr],
    batch: usize,
) -> (Client, Vec<paco_sim::OnlineOutcome>) {
    let mut client = Client::connect(addr, config).expect("connect");
    let mut outcomes = Vec::new();
    for chunk in events.chunks(batch) {
        outcomes.extend(client.send_events(chunk).expect("send batch"));
    }
    (client, outcomes)
}

fn wait_for_parked(server: &RunningServer, want: usize) {
    for _ in 0..500 {
        if server.parked_sessions() >= want {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!("session was never parked");
}

/// Acceptance: streaming a recorded trace through `paco-served` yields
/// per-branch confidence scores byte-identical to replaying the same
/// trace offline through `paco-sim`'s `OnlinePipeline`.
#[test]
fn online_predictions_match_offline_simulator_byte_for_byte() {
    let trace = record_trace("parity", BenchmarkId::Gzip, 40_000, 7);
    let events = control_events(&trace).unwrap();
    let config = tiny_paco();
    let batch = 256;

    let server = RunningServer::bind("127.0.0.1:0", 4).unwrap();
    let (client, online) = stream_all(server.addr(), &config, &events, batch);
    let online_digest = client.digest();
    client.bye().unwrap();

    // Offline replay: the simulator-side pipeline over the same trace.
    let mut pipeline = OnlinePipeline::new(&config);
    let offline: Vec<_> = events.iter().filter_map(|i| pipeline.on_instr(i)).collect();

    assert_eq!(online.len(), offline.len());
    assert_eq!(
        online, offline,
        "streamed predictions must equal offline replay"
    );
    // And the wire bytes themselves: the digest covers every
    // PREDICTIONS payload as sent.
    assert_eq!(online_digest, offline_digest(&config, &events, batch));

    server.stop();
    let _ = std::fs::remove_file(trace);
}

/// Acceptance: 4 concurrent `paco-load` clients against one server
/// produce the same per-session results as 4 sequential runs — the
/// sharded session table is race-free.
#[test]
fn four_concurrent_clients_match_four_sequential_runs() {
    let trace = record_trace("concurrency", BenchmarkId::Twolf, 30_000, 3);
    let events = control_events(&trace).unwrap();
    let server = RunningServer::bind("127.0.0.1:0", 4).unwrap();

    let mut options = LoadOptions {
        config: tiny_paco(),
        threads: 4,
        batch: 200,
        ..LoadOptions::default()
    };
    let concurrent = run_load(server.addr(), &events, &options).expect("concurrent load");
    assert_eq!(concurrent.sessions.len(), 4);
    assert_eq!(concurrent.parity_ok, Some(true), "concurrent parity");

    options.threads = 1;
    let mut sequential_digests = Vec::new();
    for _ in 0..4 {
        let report = run_load(server.addr(), &events, &options).expect("sequential load");
        assert_eq!(report.parity_ok, Some(true), "sequential parity");
        sequential_digests.push(report.sessions[0].digest);
    }

    let expect = sequential_digests[0];
    assert!(
        sequential_digests.iter().all(|&d| d == expect),
        "sequential runs must agree with each other"
    );
    for s in &concurrent.sessions {
        assert_eq!(
            s.digest, expect,
            "session {} diverged under concurrency",
            s.session_id
        );
        assert_eq!(s.events, events.len() as u64);
    }

    server.stop();
    let _ = std::fs::remove_file(trace);
}

/// A client that snapshots mid-stream, disconnects, and restores from
/// its own blob resumes bit-identically (works across server restarts).
#[test]
fn snapshot_restore_resumes_bit_identically() {
    let trace = record_trace("snapshot", BenchmarkId::Gzip, 30_000, 11);
    let events = control_events(&trace).unwrap();
    let config = tiny_paco();
    let batch = 128;
    let split = (events.len() / 2 / batch) * batch; // a frame boundary

    let server = RunningServer::bind("127.0.0.1:0", 2).unwrap();

    // Uninterrupted reference run.
    let (client, reference) = stream_all(server.addr(), &config, &events, batch);
    client.bye().unwrap();

    // First half, then snapshot, then drop the connection.
    let (mut client, mut resumed) = stream_all(server.addr(), &config, &events[..split], batch);
    let snapshot = client.snapshot().expect("snapshot");
    assert_eq!(snapshot.events as usize, split);
    drop(client); // no BYE: simulated connection loss

    // Restore on a *new* server to prove the blob alone suffices.
    server.stop();
    let server2 = RunningServer::bind("127.0.0.1:0", 2).unwrap();
    let mut client = Client::resume_with_state(server2.addr(), &config, snapshot.state)
        .expect("resume from state");
    assert_eq!(client.resumed_events() as usize, split);
    for chunk in events[split..].chunks(batch) {
        resumed.extend(client.send_events(chunk).expect("resumed batch"));
    }
    client.bye().unwrap();

    assert_eq!(resumed, reference, "snapshot/restore must be bit-identical");
    server2.stop();
    let _ = std::fs::remove_file(trace);
}

/// A dropped connection parks its session; reconnecting by id resumes
/// exactly where the stream stopped.
#[test]
fn reconnect_by_id_resumes_parked_session() {
    let trace = record_trace("reconnect", BenchmarkId::Gzip, 24_000, 5);
    let events = control_events(&trace).unwrap();
    let config = tiny_paco();
    let batch = 128;
    let split = (events.len() / 3 / batch) * batch;

    let server = RunningServer::bind("127.0.0.1:0", 2).unwrap();

    let (client, reference) = stream_all(server.addr(), &config, &events, batch);
    client.bye().unwrap();

    let (client, mut resumed) = stream_all(server.addr(), &config, &events[..split], batch);
    let id = client.session_id();
    drop(client); // connection lost
    wait_for_parked(&server, 1);

    let mut client = Client::resume_by_id(server.addr(), &config, id).expect("resume by id");
    assert_eq!(client.session_id(), id);
    assert_eq!(client.resumed_events() as usize, split);
    for chunk in events[split..].chunks(batch) {
        resumed.extend(client.send_events(chunk).expect("resumed batch"));
    }
    assert_eq!(resumed, reference, "reconnect-by-id must be bit-identical");

    // A clean BYE discards the session: the id is gone afterwards.
    client.bye().unwrap();
    for _ in 0..500 {
        if server.parked_sessions() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    match Client::resume_by_id(server.addr(), &config, id) {
        Err(ClientError::Server(ErrorCode::UnknownSession, _)) => {}
        other => panic!("resuming a discarded session must fail, got {other:?}"),
    }

    server.stop();
    let _ = std::fs::remove_file(trace);
}

/// The handshake refuses invalid configs, foreign canon hashes and
/// unknown sessions with typed errors instead of misbehaving.
#[test]
fn handshake_refusals_are_typed() {
    let server = RunningServer::bind("127.0.0.1:0", 2).unwrap();

    // Invalid config: non-power-of-two table.
    let mut bad = tiny_paco();
    bad.tournament.gshare_entries = 1000;
    match Client::connect(server.addr(), &bad) {
        Err(ClientError::Server(ErrorCode::ConfigInvalid, _)) => {}
        other => panic!("invalid config must be refused, got {other:?}"),
    }

    // Unknown session id.
    match Client::resume_by_id(server.addr(), &tiny_paco(), 0xdead_beef) {
        Err(ClientError::Server(ErrorCode::UnknownSession, _)) => {}
        other => panic!("unknown session must be refused, got {other:?}"),
    }

    // Corrupt restore blob.
    match Client::resume_with_state(server.addr(), &tiny_paco(), vec![9; 40]) {
        Err(ClientError::Server(ErrorCode::BadState, _)) => {}
        other => panic!("corrupt state must be refused, got {other:?}"),
    }

    server.stop();
}
