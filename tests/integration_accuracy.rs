//! Accuracy-pipeline integration tests: the paper's §4 methodology run
//! end-to-end at reduced scale.

use paco::{PacoConfig, PerBranchMrtConfig};
use paco_analysis::ReliabilityDiagram;
use paco_bench::accuracy_run;
use paco_sim::EstimatorKind;
use paco_workloads::BenchmarkId;

const INSTRS: u64 = 250_000;

#[test]
fn paco_goodpath_prediction_is_calibrated() {
    // The headline result at reduced scale: PaCo's RMS error between
    // predicted and observed goodpath probability is small.
    // Bands are loose relative to the 1M-instruction harness (tab7): at
    // 250k instructions the MRT sees only a couple of refresh windows.
    for (bench, bound) in [
        (BenchmarkId::Twolf, 0.17),
        (BenchmarkId::VprRoute, 0.15),
        (BenchmarkId::Vortex, 0.12),
    ] {
        let r = accuracy_run(bench, EstimatorKind::Paco(PacoConfig::paper()), INSTRS, 42);
        assert!(
            r.rms() < bound,
            "{}: RMS {:.4} too large for a calibrated predictor",
            bench.name(),
            r.rms()
        );
    }
}

#[test]
fn reliability_diagram_tracks_diagonal_in_populated_bins() {
    let r = accuracy_run(
        BenchmarkId::Twolf,
        EstimatorKind::Paco(PacoConfig::paper()),
        INSTRS,
        42,
    );
    let heavy: Vec<_> = r
        .diagram
        .points()
        .iter()
        .filter(|p| p.instances > r.diagram.total_instances() / 50)
        .collect();
    assert!(!heavy.is_empty());
    for p in heavy {
        assert!(
            (p.predicted_pct - p.observed_pct).abs() < 20.0,
            "bin {:.0}%: observed {:.1}% strays far from the diagonal",
            p.predicted_pct,
            p.observed_pct
        );
    }
}

#[test]
fn perlbmk_blind_spot_reproduces() {
    // perlbmk's mispredicts come from an indirect call the JRS table cannot
    // see, so PaCo stays overconfident there: its RMS must be clearly worse
    // than on a conditional-branch-dominated benchmark at similar overall
    // mispredict rate.
    let blind = accuracy_run(
        BenchmarkId::Perlbmk,
        EstimatorKind::Paco(PacoConfig::paper()),
        INSTRS,
        42,
    );
    let sighted = accuracy_run(
        BenchmarkId::Twolf,
        EstimatorKind::Paco(PacoConfig::paper()),
        INSTRS,
        42,
    );
    assert!(
        blind.rms() > sighted.rms(),
        "perlbmk RMS {:.4} should exceed twolf RMS {:.4}",
        blind.rms(),
        sighted.rms()
    );
    // And the cause: perlbmk's overall mispredict rate dwarfs its
    // conditional rate.
    let t = &blind.stats.threads[0];
    let overall = t.overall_mispredict_pct().unwrap();
    let cond = t.cond_mispredict_pct().unwrap();
    assert!(
        overall > 5.0 * cond.max(0.05),
        "overall {overall:.2}% vs conditional {cond:.2}%"
    );
}

#[test]
fn dynamic_mrt_beats_static_mrt_on_average() {
    // Appendix A's ordering, at reduced scale. Averaged over the
    // benchmarks whose bucket statistics differ most from the static
    // profile (where adaptivity pays) — see EXPERIMENTS.md for the full
    // twelve-benchmark table.
    let benches = [
        BenchmarkId::Gzip,
        BenchmarkId::Gcc,
        BenchmarkId::Mcf,
        BenchmarkId::Vortex,
    ];
    let mut dyn_sum = 0.0;
    let mut static_sum = 0.0;
    for b in benches {
        dyn_sum += accuracy_run(b, EstimatorKind::Paco(PacoConfig::paper()), INSTRS, 42).rms();
        static_sum += accuracy_run(b, EstimatorKind::StaticMrt, INSTRS, 42).rms();
    }
    assert!(
        dyn_sum < static_sum,
        "dynamic MRT mean RMS {:.4} should beat static {:.4}",
        dyn_sum / 4.0,
        static_sum / 4.0
    );
}

#[test]
fn per_branch_mrt_trails_mdc_bucketing() {
    // Appendix A: one entry per (branch, history) context starves each
    // entry of samples, so the per-branch table is less accurate than the
    // 16 shared MDC buckets. Checked on the benchmarks where the gap is
    // widest (see results_tab_a1.txt for the full table).
    let mut per_branch = 0.0;
    let mut dynamic = 0.0;
    for b in [BenchmarkId::Gzip, BenchmarkId::VprPlace, BenchmarkId::Bzip2] {
        per_branch += accuracy_run(
            b,
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
            INSTRS,
            42,
        )
        .rms();
        dynamic += accuracy_run(b, EstimatorKind::Paco(PacoConfig::paper()), INSTRS, 42).rms();
    }
    assert!(
        per_branch > dynamic,
        "per-branch mean RMS {:.4} must trail the dynamic MRT {:.4}",
        per_branch / 3.0,
        dynamic / 3.0
    );
}

#[test]
fn cumulative_diagram_merges_consistently() {
    let a = accuracy_run(
        BenchmarkId::Gzip,
        EstimatorKind::Paco(PacoConfig::paper()),
        100_000,
        1,
    );
    let b = accuracy_run(
        BenchmarkId::Mcf,
        EstimatorKind::Paco(PacoConfig::paper()),
        100_000,
        1,
    );
    let bins = vec![
        a.stats.threads[0].prob_instances.clone(),
        b.stats.threads[0].prob_instances.clone(),
    ];
    let merged = ReliabilityDiagram::from_many(&bins);
    assert_eq!(
        merged.total_instances(),
        a.diagram.total_instances() + b.diagram.total_instances()
    );
}
