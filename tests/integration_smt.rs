//! SMT fetch-prioritization integration tests (paper §5.2 at reduced
//! scale).

use paco::{PacoConfig, ThresholdCountConfig};
use paco_bench::{single_thread_ipc_smt, smt_run};
use paco_sim::{EstimatorKind, FetchPolicy};
use paco_workloads::BenchmarkId;

const INSTRS: u64 = 120_000;

#[test]
fn hmwipc_is_sane_under_every_policy() {
    let pair = (BenchmarkId::Gzip, BenchmarkId::Twolf);
    let sa = single_thread_ipc_smt(pair.0, INSTRS, 7);
    let sb = single_thread_ipc_smt(pair.1, INSTRS, 7);
    for (est, pol) in [
        (EstimatorKind::None, FetchPolicy::RoundRobin),
        (EstimatorKind::None, FetchPolicy::ICount),
        (
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            FetchPolicy::Confidence,
        ),
        (
            EstimatorKind::Paco(PacoConfig::paper()),
            FetchPolicy::Confidence,
        ),
    ] {
        let r = smt_run(pair, est, pol, (sa, sb), INSTRS, 7);
        assert!(
            r.hmwipc > 0.05 && r.hmwipc <= 1.3,
            "HMWIPC {:.3} out of range for {est:?}/{pol:?}",
            r.hmwipc
        );
        assert!(r.ipc[0] > 0.0 && r.ipc[1] > 0.0);
    }
}

#[test]
fn confidence_prioritization_helps_on_asymmetric_pairs() {
    // vortex almost never leaves its goodpath; vprRoute mispredicts
    // constantly. Confidence-based prioritization (with PaCo) should not
    // lose to plain ICOUNT here — this is the paper's headline scenario.
    let pair = (BenchmarkId::Vortex, BenchmarkId::VprRoute);
    let sa = single_thread_ipc_smt(pair.0, INSTRS, 3);
    let sb = single_thread_ipc_smt(pair.1, INSTRS, 3);
    let icount = smt_run(
        pair,
        EstimatorKind::None,
        FetchPolicy::ICount,
        (sa, sb),
        INSTRS,
        3,
    );
    let paco = smt_run(
        pair,
        EstimatorKind::Paco(PacoConfig::paper()),
        FetchPolicy::Confidence,
        (sa, sb),
        INSTRS,
        3,
    );
    assert!(
        paco.hmwipc > icount.hmwipc * 0.95,
        "PaCo HMWIPC {:.3} should be competitive with ICount {:.3}",
        paco.hmwipc,
        icount.hmwipc
    );
}

#[test]
fn smt_ipc_degrades_gracefully_vs_standalone() {
    // In SMT mode each thread gets at most its standalone IPC.
    let pair = (BenchmarkId::Crafty, BenchmarkId::Gap);
    let sa = single_thread_ipc_smt(pair.0, INSTRS, 5);
    let sb = single_thread_ipc_smt(pair.1, INSTRS, 5);
    let r = smt_run(
        pair,
        EstimatorKind::None,
        FetchPolicy::ICount,
        (sa, sb),
        INSTRS,
        5,
    );
    assert!(
        r.ipc[0] <= sa * 1.1,
        "thread 0: {} vs standalone {}",
        r.ipc[0],
        sa
    );
    assert!(
        r.ipc[1] <= sb * 1.1,
        "thread 1: {} vs standalone {}",
        r.ipc[1],
        sb
    );
}

#[test]
fn deterministic_smt_runs() {
    let pair = (BenchmarkId::Gcc, BenchmarkId::Mcf);
    let a = smt_run(
        pair,
        EstimatorKind::None,
        FetchPolicy::ICount,
        (1.0, 1.0),
        50_000,
        9,
    );
    let b = smt_run(
        pair,
        EstimatorKind::None,
        FetchPolicy::ICount,
        (1.0, 1.0),
        50_000,
        9,
    );
    assert_eq!(a.ipc, b.ipc);
}
