//! Cross-crate integration tests: machine-level invariants that exercise
//! workloads + predictors + estimators + the timing model together.

use paco::{PacoConfig, ThresholdCountConfig};
use paco_sim::{EstimatorKind, GatingPolicy, MachineBuilder, SimConfig};
use paco_workloads::{BenchmarkId, ALL_BENCHMARKS};

fn machine(bench: BenchmarkId, est: EstimatorKind, seed: u64) -> paco_sim::Machine {
    MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(seed)), est)
        .seed(seed)
        .build()
}

#[test]
fn every_benchmark_simulates_and_makes_progress() {
    for bench in ALL_BENCHMARKS {
        let mut m = machine(bench, EstimatorKind::Paco(PacoConfig::paper()), 3);
        let stats = m.run(40_000);
        let ipc = stats.ipc(0);
        assert!(
            ipc > 0.15 && ipc <= 4.0,
            "{}: IPC {ipc} out of range",
            bench.name()
        );
        assert!(stats.threads[0].fetched >= stats.threads[0].retired);
        assert!(stats.threads[0].executed >= stats.threads[0].retired);
    }
}

#[test]
fn runs_are_deterministic_across_processes_and_estimators() {
    for est in [
        EstimatorKind::None,
        EstimatorKind::Paco(PacoConfig::paper()),
        EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
    ] {
        let a = machine(BenchmarkId::Gap, est, 7).run(30_000);
        let b = machine(BenchmarkId::Gap, est, 7).run(30_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.threads[0].fetched, b.threads[0].fetched);
        assert_eq!(a.threads[0].executed_badpath, b.threads[0].executed_badpath);
    }
}

#[test]
fn estimator_choice_does_not_change_timing_without_gating() {
    // Estimators only observe; with no gating the timing must be identical.
    let a = machine(BenchmarkId::Crafty, EstimatorKind::None, 5).run(30_000);
    let b = machine(
        BenchmarkId::Crafty,
        EstimatorKind::Paco(PacoConfig::paper()),
        5,
    )
    .run(30_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(
        a.threads[0].cond_mispredicted,
        b.threads[0].cond_mispredicted
    );
}

#[test]
fn mispredicts_produce_wrong_path_work_proportionally() {
    // twolf mispredicts ~5x more often than vortex; its wrong-path traffic
    // must be correspondingly larger.
    let hard = machine(BenchmarkId::Twolf, EstimatorKind::None, 9).run(60_000);
    let easy = machine(BenchmarkId::Vortex, EstimatorKind::None, 9).run(60_000);
    let hard_frac = hard.threads[0].fetched_badpath as f64 / hard.threads[0].fetched as f64;
    let easy_frac = easy.threads[0].fetched_badpath as f64 / easy.threads[0].fetched as f64;
    assert!(
        hard_frac > 2.0 * easy_frac,
        "twolf badpath fraction {hard_frac:.3} vs vortex {easy_frac:.3}"
    );
}

#[test]
fn oracle_never_retires_wrong_path_instructions() {
    // retired == fetched_goodpath − still-in-flight; every retired
    // instruction must have been fetched on the goodpath.
    let stats = machine(BenchmarkId::VprRoute, EstimatorKind::None, 11).run(50_000);
    let t = &stats.threads[0];
    let goodpath_fetched = t.fetched - t.fetched_badpath;
    assert!(
        t.retired <= goodpath_fetched,
        "retired {} > goodpath fetched {}",
        t.retired,
        goodpath_fetched
    );
}

#[test]
fn full_gating_starves_fetch_completely() {
    let mut m = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(
            Box::new(BenchmarkId::Gzip.build(1)),
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        )
        .gating(GatingPolicy::CountGate { gate_count: 0 })
        .seed(1)
        .build();
    let stats = m.run_cycles(5_000);
    assert_eq!(stats.threads[0].fetched, 0, "gate-count 0 blocks all fetch");
    assert!(stats.threads[0].gated_cycles > 4_000);
}

#[test]
fn mdc_bucket_rates_decrease_with_confidence() {
    // Figure 2's shape: MDC-0 branches mispredict far more often than
    // MDC-15 branches.
    let stats = machine(BenchmarkId::Bzip2, EstimatorKind::None, 13).run(300_000);
    let t = &stats.threads[0];
    let low = t.mdc_bucket_mispredict_pct(0).expect("bucket 0 populated");
    let high = t
        .mdc_bucket_mispredict_pct(15)
        .expect("bucket 15 populated");
    assert!(
        low > 4.0 * high.max(0.5),
        "MDC0 {low:.1}% should dwarf MDC15 {high:.1}%"
    );
}

#[test]
fn smt_shares_capacity_between_threads() {
    let mut m = MachineBuilder::new(SimConfig::paper_smt_8wide())
        .thread(Box::new(BenchmarkId::Gcc.build(1)), EstimatorKind::None)
        .thread(Box::new(BenchmarkId::Mcf.build(2)), EstimatorKind::None)
        .seed(17)
        .build();
    let stats = m.run(30_000);
    // Both threads make progress; combined throughput exceeds either alone.
    assert!(stats.ipc(0) > 0.1);
    assert!(stats.ipc(1) > 0.1);
}
