//! Pipeline-gating integration tests (paper §5.1 at reduced scale).

use paco::{PacoConfig, ThresholdCountConfig};
use paco_bench::gating_run;
use paco_sim::{EstimatorKind, GatingPolicy};
use paco_types::Probability;
use paco_workloads::BenchmarkId;

const INSTRS: u64 = 200_000;

fn paco() -> EstimatorKind {
    EstimatorKind::Paco(PacoConfig::paper())
}

fn jrs3() -> EstimatorKind {
    EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default())
}

#[test]
fn conservative_paco_gating_is_nearly_free() {
    // Conservative PaCo gating should cost almost nothing while still
    // removing badpath work (the paper even sees small speedups from
    // reduced pollution). Our machine keeps more branches unresolved than
    // the paper's, shifting the useful probability range upward (see
    // EXPERIMENTS.md), so "conservative" here is a 50% target.
    let r = gating_run(
        BenchmarkId::Twolf,
        paco(),
        GatingPolicy::paco_gate(Probability::new(0.50).unwrap()),
        INSTRS,
        42,
    );
    assert!(
        r.perf_loss_pct < 1.5,
        "conservative gating cost {:.2}% perf",
        r.perf_loss_pct
    );
    assert!(
        r.badpath_exec_reduction_pct > 2.0,
        "badpath reduction {:.1}%",
        r.badpath_exec_reduction_pct
    );
}

#[test]
fn aggressive_gating_trades_performance_for_badpath() {
    // Raising the gate probability must monotonically (in aggregate)
    // increase both badpath reduction and performance cost.
    let mild = gating_run(
        BenchmarkId::VprRoute,
        paco(),
        GatingPolicy::paco_gate(Probability::new(0.30).unwrap()),
        INSTRS,
        42,
    );
    let aggressive = gating_run(
        BenchmarkId::VprRoute,
        paco(),
        GatingPolicy::paco_gate(Probability::new(0.80).unwrap()),
        INSTRS,
        42,
    );
    assert!(
        aggressive.badpath_exec_reduction_pct > mild.badpath_exec_reduction_pct,
        "aggressive {:.1}% vs mild {:.1}%",
        aggressive.badpath_exec_reduction_pct,
        mild.badpath_exec_reduction_pct
    );
    assert!(aggressive.perf_loss_pct > mild.perf_loss_pct - 0.5);
}

#[test]
fn counter_gating_at_low_gate_count_hurts_performance() {
    // Gate-count 1 stops fetch whenever any low-confidence branch is in
    // flight — the paper's example of over-aggressive conventional gating.
    let r = gating_run(
        BenchmarkId::Twolf,
        jrs3(),
        GatingPolicy::CountGate { gate_count: 1 },
        INSTRS,
        42,
    );
    assert!(
        r.badpath_exec_reduction_pct > 30.0,
        "reduction {:.1}%",
        r.badpath_exec_reduction_pct
    );
    assert!(
        r.perf_loss_pct > 1.0,
        "gate-count 1 should visibly cost performance, got {:.2}%",
        r.perf_loss_pct
    );
}

#[test]
fn paco_dominates_counter_gating_at_matched_badpath_reduction() {
    // The headline Figure-10 shape: for a similar badpath reduction, PaCo
    // pays less performance than the counter scheme (averaged over two
    // mispredict-heavy benchmarks to damp noise).
    let benches = [BenchmarkId::Twolf, BenchmarkId::VprPlace];
    let mut paco_loss = 0.0;
    let mut paco_red = 0.0;
    let mut jrs_loss = 0.0;
    let mut jrs_red = 0.0;
    for b in benches {
        let p = gating_run(
            b,
            paco(),
            GatingPolicy::paco_gate(Probability::new(0.62).unwrap()),
            INSTRS,
            42,
        );
        paco_loss += p.perf_loss_pct;
        paco_red += p.badpath_exec_reduction_pct;
        let j = gating_run(
            b,
            jrs3(),
            GatingPolicy::CountGate { gate_count: 2 },
            INSTRS,
            42,
        );
        jrs_loss += j.perf_loss_pct;
        jrs_red += j.badpath_exec_reduction_pct;
    }
    // Either PaCo removes more badpath at no extra cost, or pays less for
    // at least comparable reduction.
    let paco_efficiency = paco_red / paco_loss.max(0.3);
    let jrs_efficiency = jrs_red / jrs_loss.max(0.3);
    assert!(
        paco_efficiency > jrs_efficiency,
        "PaCo efficiency {paco_efficiency:.1} (red {paco_red:.1}%/loss {paco_loss:.2}%) \
         vs JRS {jrs_efficiency:.1} (red {jrs_red:.1}%/loss {jrs_loss:.2}%)"
    );
}

#[test]
fn badpath_fetch_reduction_exceeds_execute_reduction() {
    // Gating stops fetch directly; execution reduction is downstream and
    // smaller (paper: 70% fetch vs 32% execute reduction).
    let r = gating_run(
        BenchmarkId::Twolf,
        paco(),
        GatingPolicy::paco_gate(Probability::new(0.62).unwrap()),
        INSTRS,
        42,
    );
    assert!(
        r.badpath_fetch_reduction_pct >= r.badpath_exec_reduction_pct * 0.8,
        "fetch red {:.1}% vs exec red {:.1}%",
        r.badpath_fetch_reduction_pct,
        r.badpath_exec_reduction_pct
    );
}
