//! A/B harness: fused register loop vs chunked data-parallel kernel,
//! swept across table footprints.
//!
//! This is the measurement behind the kernel routing decision in
//! `crates/sim/src/online.rs`: `run_batch` always runs the fused loop
//! because, on every *validated* table configuration (the config
//! validator caps tables at `MAX_TABLE_ENTRIES`, so host footprint
//! tops out around 1 MiB — cache-resident on any modern part), the
//! fused loop wins. The chunked kernel's ~100 B/event of staged
//! array traffic round-trips through L1 and never pays for itself
//! when the tables it is prefetching are already resident.
//!
//! Run it with `cargo run --release --example kernel_ab`. Expect the
//! fused column ahead by roughly 25–30% at every footprint on
//! cache-rich hardware; a machine where the chunked column wins at
//! the `max` footprint is the hardware the chunked kernel is kept
//! for (see `PREFETCH_FOOTPRINT_MIN`).
//!
//! Methodology notes: best-of-5 per cell (the lanes are deterministic,
//! so the fastest pass is the least-perturbed one), three interleaved
//! rounds per footprint so cross-round agreement is visible, and the
//! `None` estimator so the comparison isolates the kernels rather
//! than estimator math. Throughput is *raw* events/s over the whole
//! gzip instruction stream (~14% control events), so numbers here are
//! ~7× the control-event eps the `hotpath` experiment reports.

use paco_branch::{ConfidenceConfig, TournamentConfig};
use paco_sim::{EstimatorKind, NoProbe, OnlineConfig, OnlinePipeline, OutcomeBatch};
use paco_types::EventBatch;
use paco_workloads::{BenchmarkId, Workload};
use std::time::Instant;

fn batches(n: usize, seed: u64) -> Vec<EventBatch> {
    let mut w = BenchmarkId::Gzip.build(seed);
    let instrs: Vec<_> = (0..n).map(|_| w.next_instr()).collect();
    instrs
        .chunks(512)
        .map(|c| {
            let mut b = EventBatch::new();
            b.extend_from_instrs(c);
            b
        })
        .collect()
}

fn time_lane(config: &OnlineConfig, batches: &[EventBatch], chunked: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let mut pipe = OnlinePipeline::new(config);
        let mut out = OutcomeBatch::new();
        let t0 = Instant::now();
        for b in batches {
            out.clear();
            if chunked {
                pipe.run_batch_probed(b, &mut out, &mut NoProbe);
            } else {
                pipe.run_batch(b, &mut out);
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    best
}

fn main() {
    let events = 400_000;
    let bs = batches(events, 42);
    let n: usize = bs.iter().map(|b| b.len()).sum();
    for (name, tent, mdce) in [
        ("tiny(12KB)", 1usize << 12, 1usize << 10),
        ("paper(400KB)", 1 << 17, 1 << 14),
        ("max(1MB)", 1 << 18, 1 << 18),
    ] {
        let config = OnlineConfig {
            tournament: TournamentConfig {
                gshare_entries: tent,
                bimodal_entries: tent,
                selector_entries: tent,
                history_bits: 8,
            },
            confidence: ConfidenceConfig {
                entries: mdce,
                counter_bits: 4,
                history_bits: 8,
                enhanced: true,
            },
            estimator: EstimatorKind::None,
            resolve_lag: 32,
            ticks_per_event: 1,
        };
        for round in 0..3 {
            let tf = time_lane(&config, &bs, false);
            let tc = time_lane(&config, &bs, true);
            println!(
                "{name} r{round}: fused {:.1}M eps, chunked {:.1}M eps ({:+.1}%)",
                n as f64 / tf / 1e6,
                n as f64 / tc / 1e6,
                (tf / tc - 1.0) * 100.0
            );
        }
    }
}
