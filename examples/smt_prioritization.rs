//! SMT fetch prioritization: run one benchmark pair under ICOUNT and
//! under confidence-based prioritization with PaCo (paper §5.2 in
//! miniature).
//!
//! Run with: `cargo run --release -p paco-bench --example smt_prioritization`

use paco::{PacoConfig, ThresholdCountConfig};
use paco_analysis::hmwipc;
use paco_sim::{EstimatorKind, FetchPolicy, MachineBuilder, SimConfig};
use paco_workloads::BenchmarkId;

fn single_ipc(bench: BenchmarkId, instrs: u64) -> f64 {
    let mut m = MachineBuilder::new(SimConfig::paper_smt_8wide().with_threads(1))
        .thread(Box::new(bench.build(1)), EstimatorKind::None)
        .seed(3)
        .build();
    m.run(instrs).ipc(0)
}

fn main() {
    let instrs = 150_000;
    let (a, b) = (BenchmarkId::Vortex, BenchmarkId::VprRoute);
    println!("SMT pair: {} + {} ({} instructions/thread)\n", a, b, instrs);

    let sa = single_ipc(a, instrs);
    let sb = single_ipc(b, instrs);
    println!("standalone IPC: {a} {sa:.3}, {b} {sb:.3}\n");

    let configs: [(&str, EstimatorKind, FetchPolicy); 3] = [
        ("ICount", EstimatorKind::None, FetchPolicy::ICount),
        (
            "JRS-t3 confidence",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            FetchPolicy::Confidence,
        ),
        (
            "PaCo confidence",
            EstimatorKind::Paco(PacoConfig::paper()),
            FetchPolicy::Confidence,
        ),
    ];

    for (name, est, policy) in configs {
        let mut m = MachineBuilder::new(SimConfig::paper_smt_8wide())
            .thread(Box::new(a.build(1)), est)
            .thread(Box::new(b.build(2)), est)
            .fetch_policy(policy)
            .seed(3)
            .build();
        let stats = m.run(instrs);
        let (ia, ib) = (stats.ipc(0), stats.ipc(1));
        println!(
            "{name:<20} IPC {ia:.3}/{ib:.3}   HMWIPC {:.3}",
            hmwipc(&[(sa, ia), (sb, ib)])
        );
    }

    println!(
        "\nvortex is almost never on a wrong path while vprRoute mispredicts\n\
         constantly; a confidence-aware policy steers fetch bandwidth to the\n\
         thread more likely on its goodpath, and PaCo's probability estimate\n\
         makes that comparison sharper than a low-confidence branch count."
    );
}
