//! Quickstart: build a PaCo predictor, drive it with a synthetic branch
//! stream, and watch the goodpath probability move.
//!
//! Run with: `cargo run --release -p paco-bench --example quickstart`

use paco::{BranchFetchInfo, PacoConfig, PacoPredictor, PathConfidenceEstimator};
use paco_branch::{ConfidenceConfig, DirectionPredictor, MdcTable, TournamentPredictor};
use paco_types::{GlobalHistory, Pc, SplitMix64};

fn main() {
    // The three pieces of the paper's front end that matter here:
    // a direction predictor, the JRS MDC table, and PaCo itself.
    let mut predictor = TournamentPredictor::paper_default();
    let mut mdc = MdcTable::new(ConfidenceConfig::paper());
    let mut paco = PacoPredictor::new(PacoConfig::paper().with_refresh_period(10_000));
    let mut hist = GlobalHistory::new(8);
    let mut rng = SplitMix64::new(7);

    // A toy program: 32 branch sites, a few of them hard to predict.
    let sites: Vec<(Pc, f64)> = (0..32)
        .map(|i| {
            let p_taken = if i % 8 == 0 { 0.6 } else { 0.97 };
            (Pc::new(0x40_0000 + i * 64), p_taken)
        })
        .collect();

    println!("warming up the predictor and the MRT...");
    let mut in_flight: Vec<(paco::BranchToken, bool)> = Vec::new();
    for step in 0..200_000u64 {
        let (pc, p_taken) = sites[(step % sites.len() as u64) as usize];
        let taken = rng.chance_f64(p_taken);
        let h = hist.bits();
        let predicted = predictor.predict(pc, h);
        let idx = mdc.index(pc, h, predicted);

        // Fetch: the branch joins PaCo's confidence register.
        let token = paco.on_fetch(BranchFetchInfo::conditional(mdc.read(idx)));
        in_flight.push((token, predicted != taken));

        // Pretend branches resolve 8 fetches later (a tiny "pipeline").
        if in_flight.len() > 8 {
            let (t, mispredicted) = in_flight.remove(0);
            paco.on_resolve(t, mispredicted);
        }

        predictor.update(pc, h, taken, predicted);
        mdc.update(idx, predicted == taken);
        hist.push(taken);
        paco.tick(1);

        if step % 40_000 == 0 && step > 0 {
            let p = paco.goodpath_probability().unwrap();
            println!(
                "  step {:>7}: {} unresolved branches, goodpath probability {:.3}",
                step,
                paco.outstanding_branches(),
                p.value()
            );
        }
    }

    // Show the MRT's learned encodings: low MDC buckets (recently
    // mispredicted branches) should carry much larger encodings.
    println!("\nlearned encoded probabilities per MDC bucket:");
    for v in [0u8, 1, 2, 3, 7, 15] {
        let enc = paco.mrt().encoded(paco_branch::Mdc::new(v));
        println!(
            "  MDC {:>2}: encoded {:>4}  (correct-prediction probability ~{:.3})",
            v,
            enc.raw(),
            enc.to_probability().value()
        );
    }
    println!("\nA gating threshold of 10% goodpath probability would be encoded once");
    println!(
        "as {} and compared against the register with a single integer compare.",
        paco::EncodedProb::from_probability(paco_types::Probability::new(0.1).unwrap())
    );
}
