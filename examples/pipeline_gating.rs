//! Pipeline gating on the full simulated machine: compare an ungated run,
//! conventional counter gating, and PaCo probability gating on one
//! benchmark (paper §5.1 in miniature).
//!
//! Run with: `cargo run --release -p paco-bench --example pipeline_gating`

use paco::{PacoConfig, ThresholdCountConfig};
use paco_sim::{EstimatorKind, GatingPolicy, MachineBuilder, SimConfig};
use paco_types::Probability;
use paco_workloads::BenchmarkId;

fn run(label: &str, estimator: EstimatorKind, gating: GatingPolicy, baseline: Option<(f64, u64)>) {
    let instrs = 300_000;
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(BenchmarkId::Twolf.build(1)), estimator)
        .gating(gating)
        .seed(9)
        .build();
    // Fast-forward past initialization (predictors and PaCo's first MRT
    // refresh), as the paper does.
    machine.run(400_000);
    machine.reset_stats();
    let stats = machine.run(instrs);
    let ipc = stats.ipc(0);
    let bad = stats.total_badpath_fetched();
    match baseline {
        None => println!("{label:<24} IPC {ipc:.3}   badpath fetched {bad:>8}   (baseline)"),
        Some((base_ipc, base_bad)) => {
            println!(
                "{label:<24} IPC {ipc:.3} ({:+.2}%)   badpath fetched {bad:>8} ({:+.1}%)   gated cycles {}",
                100.0 * (ipc - base_ipc) / base_ipc,
                100.0 * (bad as f64 - base_bad as f64) / base_bad as f64,
                stats.threads[0].gated_cycles,
            );
        }
    }
}

fn main() {
    println!("pipeline gating on twolf (300k instructions)\n");

    // Baseline, no gating.
    let instrs = 300_000;
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(
            Box::new(BenchmarkId::Twolf.build(1)),
            EstimatorKind::Paco(PacoConfig::paper()),
        )
        .seed(9)
        .build();
    machine.run(400_000);
    machine.reset_stats();
    let base = machine.run(instrs);
    let baseline = (base.ipc(0), base.total_badpath_fetched());
    println!(
        "{:<24} IPC {:.3}   badpath fetched {:>8}   (baseline)",
        "no gating", baseline.0, baseline.1
    );

    run(
        "JRS-t3, gate-count 2",
        EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        GatingPolicy::CountGate { gate_count: 2 },
        Some(baseline),
    );
    // Our simulated machine keeps more branches unresolved than the
    // paper's, so useful PaCo gating probabilities sit higher than the
    // paper's 10-20% (see EXPERIMENTS.md, Figure 10 notes).
    run(
        "PaCo, gate below 62%",
        EstimatorKind::Paco(PacoConfig::paper()),
        GatingPolicy::paco_gate(Probability::new(0.62).unwrap()),
        Some(baseline),
    );
    run(
        "PaCo, throttle 85..40%",
        EstimatorKind::Paco(PacoConfig::paper()),
        GatingPolicy::paco_throttle(
            Probability::new(0.85).unwrap(),
            Probability::new(0.40).unwrap(),
        ),
        Some(baseline),
    );

    println!(
        "\nGating suppresses wrong-path *fetch* directly (the paper's energy\n\
         story); PaCo achieves its reduction at a lower IPC cost per squashed\n\
         instruction than the counter scheme (paper Figure 10; see\n\
         EXPERIMENTS.md for the full 40-configuration sweep)."
    );
}
