//! Build and render a reliability diagram for PaCo on one benchmark —
//! the paper's §4 methodology end to end on a small run.
//!
//! Run with: `cargo run --release -p paco-bench --example reliability_diagram`

use paco::PacoConfig;
use paco_analysis::{render_diagram_ascii, ReliabilityDiagram};
use paco_sim::{EstimatorKind, MachineBuilder, SimConfig};
use paco_workloads::BenchmarkId;

fn main() {
    let bench = BenchmarkId::Parser;
    let instrs = 400_000;
    println!("reliability diagram: PaCo on {bench} ({instrs} instructions)\n");

    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(
            Box::new(bench.build(5)),
            EstimatorKind::Paco(PacoConfig::paper()),
        )
        .seed(21)
        .build();
    let stats = machine.run(instrs);
    let diagram = ReliabilityDiagram::from_bins(&stats.threads[0].prob_instances);

    println!("{}", render_diagram_ascii(&diagram, 64, 24));
    println!(
        "instances: {}   RMS error: {:.4}  (paper reports 0.0415 for parser)",
        diagram.total_instances(),
        diagram.rms_error()
    );

    // Show the occupancy histogram the paper overlays on the diagram.
    println!("\npredicted-probability occupancy (top bins):");
    let mut points: Vec<_> = diagram.points().to_vec();
    points.sort_by_key(|p| std::cmp::Reverse(p.instances));
    for p in points.iter().take(8) {
        println!(
            "  predicted {:>5.1}%  observed {:>5.1}%  {:>10} instances",
            p.predicted_pct, p.observed_pct, p.instances
        );
    }
}
